//! The planning stage of the staged query pipeline:
//! `parse → plan → prepare → execute`.
//!
//! A [`Planner`] turns a parsed [`Statement`] into a typed [`LogicalPlan`]
//! with every name resolved, every option defaulted and validated, the
//! predicate constant-folded against the table's dictionaries, and —
//! for sampled queries — the serving sample layer chosen up front, with
//! its selection rationale recorded. Executing a plan performs no further
//! binding, so a plan (or a [`crate::PreparedQuery`] wrapping one) can run
//! repeatedly and concurrently.

use crate::catalog::SampleCatalog;
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::models::build_model;
use flashp_query::{
    bind_expr, split_select_constraint, Expr, ForecastStmt, Literal, OptionValue, SelectStmt,
    Statement, TimeBound, TimeEndpoint, TimeWindow, UsingClause,
};
use flashp_storage::{AggFunc, CompiledPredicate, TimeSeriesTable, Timestamp};

/// Resolve and validate a `SAMPLE_RATE` option (shared by FORECAST and
/// SELECT planning).
fn sample_rate_option(option: Option<&OptionValue>, default: f64) -> Result<f64, EngineError> {
    let rate = match option {
        Some(v) => v
            .as_float()
            .ok_or_else(|| EngineError::Config("SAMPLE_RATE must be numeric".to_string()))?,
        None => default,
    };
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(EngineError::Config(format!("SAMPLE_RATE {rate} outside (0, 1]")));
    }
    Ok(rate)
}

/// Where a plan reads its rows from.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanSource {
    /// Exact scan over the base table partitions in range.
    FullScan {
        /// Base-table rows inside the scan range.
        est_rows: usize,
    },
    /// Estimation from one sample-catalog layer.
    SampleLayer {
        /// Index into the catalog's layer list.
        layer: usize,
        /// The layer's sampling rate.
        rate: f64,
        /// Sampler family label (e.g. `"Optimal GSW"`).
        sampler: String,
        /// Bucket index serving the plan's measure.
        bucket: usize,
        /// Sampled rows inside the scan range (the rows estimation scans).
        est_rows: usize,
        /// Why this layer was chosen over the others.
        rationale: String,
        /// [`SampleCatalog::version`] of the catalog the plan was made
        /// against — reported by `EXPLAIN`. Catalog versions derived via
        /// [`SampleCatalog::apply_delta`] keep the same layer/bucket
        /// structure, so the plan stays executable after a publish; the
        /// version records which samples sized its estimates.
        catalog_version: u64,
    },
}

impl ScanSource {
    /// Sampler label as reported in results (`"full scan"` for exact).
    pub fn sampler_label(&self) -> &str {
        match self {
            ScanSource::FullScan { .. } => "full scan",
            ScanSource::SampleLayer { sampler, .. } => sampler,
        }
    }

    /// Effective rate (`1.0` for exact scans).
    pub fn rate_used(&self) -> f64 {
        match self {
            ScanSource::FullScan { .. } => 1.0,
            ScanSource::SampleLayer { rate, .. } => *rate,
        }
    }

    /// Estimated rows scanned per execution.
    pub fn est_rows(&self) -> usize {
        match self {
            ScanSource::FullScan { est_rows } | ScanSource::SampleLayer { est_rows, .. } => {
                *est_rows
            }
        }
    }
}

/// A plan's scan time range: fixed at plan time when every endpoint is a
/// literal, or a parameterized [`TimeWindow`] resolved (date-validated,
/// clamped) per binding. Everything range-independent — predicate
/// compilation, dictionary-code folding, model/option validation — stays
/// static either way; only the clamp and the scan-source row counts wait
/// for the parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeRangeSlot {
    /// Resolved at plan time; `None` when the clamped range is provably
    /// empty (the plan returns zero rows).
    Static(Option<(Timestamp, Timestamp)>),
    /// Depends on `?` parameters; executors specialize the plan per
    /// binding (see [`crate::PreparedQuery`]).
    Dynamic(TimeWindow),
}

impl TimeRangeSlot {
    /// Does the range wait on `?` parameters?
    pub fn is_dynamic(&self) -> bool {
        matches!(self, TimeRangeSlot::Dynamic(_))
    }
}

/// Where a plan reads rows from: chosen at plan time for static ranges,
/// deferred to bind time when the range is parameterized (layer row
/// counts and full-scan sizes depend on the bound window).
#[derive(Debug, Clone, PartialEq)]
pub enum SourceSlot {
    /// Scan source chosen at plan (or specialization) time.
    Planned(ScanSource),
    /// Selection deferred until the range parameters are bound.
    Deferred,
}

impl SourceSlot {
    /// The chosen scan source; errors when selection is still deferred.
    pub fn planned(&self) -> Result<&ScanSource, EngineError> {
        match self {
            SourceSlot::Planned(s) => Ok(s),
            SourceSlot::Deferred => Err(EngineError::Parameter(
                "plan's scan source is unresolved: bind the range parameters first".to_string(),
            )),
        }
    }
}

/// The predicate of a plan: compiled once at plan time when the statement
/// has no parameters, or kept as a template to be bound per execution.
#[derive(Debug, Clone)]
pub enum PredicateSlot {
    /// Fully compiled (constant-folded, dictionary codes resolved).
    Compiled(CompiledPredicate),
    /// Dimension constraint with `?` placeholders; compiled per binding.
    Template {
        /// The dimension-only constraint, placeholders intact.
        constraint: Expr,
        /// Number of `?` placeholders.
        num_params: usize,
    },
}

impl PredicateSlot {
    /// Number of `?` placeholders this slot needs bound.
    pub fn num_params(&self) -> usize {
        match self {
            PredicateSlot::Compiled(_) => 0,
            PredicateSlot::Template { num_params, .. } => *num_params,
        }
    }
}

/// A fully planned FORECAST task (the two-phase pipeline of §2.1: the
/// per-timestamp aggregation batch of Eq. 4, then model fit + predict).
#[derive(Debug, Clone)]
pub struct ForecastPlan {
    /// Bound aggregate function.
    pub agg: AggFunc,
    /// Resolved measure column index.
    pub measure: usize,
    /// Measure name as written in the statement.
    pub measure_name: String,
    /// Compiled (or templated) dimension constraint `C`.
    pub predicate: PredicateSlot,
    /// Training window (inclusive): static, or parameterized via `USING
    /// (?, ?)` and resolved per binding.
    pub range: TimeRangeSlot,
    /// Requested sampling rate (after defaulting).
    pub rate: f64,
    /// Resolved model name.
    pub model: String,
    /// Forecast horizon (`FORE_PERIOD`).
    pub horizon: usize,
    /// Confidence level for intervals.
    pub confidence: f64,
    /// Noise-aware interval widening (Proposition 1).
    pub noise_aware: bool,
    /// Reassociated vector float sums for exact scan paths
    /// (`OPTION (FAST_SUM = 1)`; defaults from
    /// [`EngineConfig::fast_sum`]).
    pub fast_sum: bool,
    /// Total `?` placeholders in the statement (constraint + window).
    pub num_params: usize,
    /// Where the training estimates come from (full scan vs sample layer;
    /// deferred while the window is parameterized).
    pub source: SourceSlot,
}

impl ForecastPlan {
    /// The resolved training window (inclusive). Errors when the range is
    /// still parameterized — executors specialize dynamic plans before
    /// running them.
    pub fn window(&self) -> Result<(Timestamp, Timestamp), EngineError> {
        match &self.range {
            TimeRangeSlot::Static(Some(r)) => Ok(*r),
            TimeRangeSlot::Static(None) => {
                Err(EngineError::Config("FORECAST window is empty".to_string()))
            }
            TimeRangeSlot::Dynamic(_) => Err(EngineError::Parameter(
                "FORECAST window is unresolved: bind the range parameters first".to_string(),
            )),
        }
    }
}

/// A fully planned SELECT query.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// Bound aggregate function.
    pub agg: AggFunc,
    /// Resolved measure column index.
    pub measure: usize,
    /// Measure name as written in the statement.
    pub measure_name: String,
    /// Compiled (or templated) dimension constraint.
    pub predicate: PredicateSlot,
    /// Scan range clamped to the table's bounds (`Static(None)` when the
    /// clamped range is empty — the plan returns zero rows), or a
    /// parameterized window clamped per binding.
    pub range: TimeRangeSlot,
    /// Requested sampling rate (1.0 = exact; kept for bind-time
    /// re-selection of the serving layer).
    pub rate: f64,
    /// One row per timestamp (`GROUP BY t`) vs a single scalar row.
    pub group_by_time: bool,
    /// Reassociated vector float sums for exact scan paths
    /// (`OPTION (FAST_SUM = 1)`; defaults from
    /// [`EngineConfig::fast_sum`]).
    pub fast_sum: bool,
    /// Total `?` placeholders in the statement (constraint + window).
    pub num_params: usize,
    /// Where the answer comes from (full scan vs sample layer; deferred
    /// while the window is parameterized).
    pub source: SourceSlot,
}

impl SelectPlan {
    /// The resolved scan range (`None` = provably empty). Errors when the
    /// range is still parameterized — executors specialize dynamic plans
    /// before running them.
    pub fn static_range(&self) -> Result<Option<(Timestamp, Timestamp)>, EngineError> {
        match &self.range {
            TimeRangeSlot::Static(r) => Ok(*r),
            TimeRangeSlot::Dynamic(_) => Err(EngineError::Parameter(
                "SELECT range is unresolved: bind the range parameters first".to_string(),
            )),
        }
    }
}

/// A typed, executable plan.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// A planned FORECAST task.
    Forecast(ForecastPlan),
    /// A planned SELECT query.
    Select(SelectPlan),
}

impl LogicalPlan {
    /// Number of `?` placeholders the plan needs bound at execution
    /// (dimension constraint plus time-window parameters).
    pub fn num_params(&self) -> usize {
        match self {
            LogicalPlan::Forecast(p) => p.num_params,
            LogicalPlan::Select(p) => p.num_params,
        }
    }

    /// The plan's scan-source slot.
    pub fn source(&self) -> &SourceSlot {
        match self {
            LogicalPlan::Forecast(p) => &p.source,
            LogicalPlan::Select(p) => &p.source,
        }
    }

    /// The plan's time-range slot.
    pub fn range(&self) -> &TimeRangeSlot {
        match self {
            LogicalPlan::Forecast(p) => &p.range,
            LogicalPlan::Select(p) => &p.range,
        }
    }
}

/// Resolve a dynamic FORECAST window against bound parameters and the
/// current table snapshot (relative `USING LAST n DAYS` windows anchor at
/// the table's newest timestamp). Errors are typed, never panics: a
/// missing/ill-typed/impossible-date parameter is
/// [`EngineError::Parameter`]; a reversed window is
/// [`EngineError::Config`], exactly like its literal counterpart at plan
/// time.
pub(crate) fn resolve_forecast_window(
    window: &TimeWindow,
    params: &[Literal],
    table: &TimeSeriesTable,
) -> Result<(Timestamp, Timestamp), EngineError> {
    resolve_forecast_window_bounds(window, params, table.time_bounds())
}

/// [`resolve_forecast_window`] against explicit table bounds — the entry
/// point for scatter-gather executors, which must resolve a window once
/// against the *union* of per-shard bounds so every shard sees the same
/// range regardless of which days landed where.
pub(crate) fn resolve_forecast_window_bounds(
    window: &TimeWindow,
    params: &[Literal],
    bounds: Option<(Timestamp, Timestamp)>,
) -> Result<(Timestamp, Timestamp), EngineError> {
    let latest = bounds.map(|(_, hi)| hi);
    let (lo, hi) = window.resolve(params, latest).map_err(|e| EngineError::Parameter(e.message))?;
    let (Some(mut s), Some(e)) = (lo, hi) else {
        return Err(EngineError::Config("FORECAST window must bound both ends".to_string()));
    };
    // "LAST n DAYS" means the trailing n days *of the table*: a count
    // longer than the table clamps to its first day instead of asking the
    // executor for days that never existed.
    if window.is_relative() {
        if let Some((table_lo, _)) = bounds {
            s = s.max(table_lo);
        }
    }
    if e < s {
        return Err(EngineError::Config(format!("USING range is reversed: {s} > {e}")));
    }
    Ok((s, e))
}

/// Resolve and clamp a dynamic SELECT window against bound parameters:
/// `None` when the clamped range is empty (inverted bounds or a window
/// entirely outside the table), so the executor returns zero rows instead
/// of attempting a negative-length scan.
pub(crate) fn resolve_select_range(
    window: &TimeWindow,
    params: &[Literal],
    table: &TimeSeriesTable,
) -> Result<Option<(Timestamp, Timestamp)>, EngineError> {
    resolve_select_range_bounds(window, params, table.time_bounds())
}

/// [`resolve_select_range`] against explicit table bounds — see
/// [`resolve_forecast_window_bounds`] for why scatter-gather executors
/// resolve once against union bounds instead of per-shard tables.
pub(crate) fn resolve_select_range_bounds(
    window: &TimeWindow,
    params: &[Literal],
    bounds: Option<(Timestamp, Timestamp)>,
) -> Result<Option<(Timestamp, Timestamp)>, EngineError> {
    let (table_lo, table_hi) =
        bounds.ok_or_else(|| EngineError::Config("empty table".to_string()))?;
    let (lo, hi) =
        window.resolve(params, Some(table_hi)).map_err(|e| EngineError::Parameter(e.message))?;
    let lo = lo.map_or(table_lo, |t| t.max(table_lo));
    let hi = hi.map_or(table_hi, |t| t.min(table_hi));
    Ok(if hi < lo { None } else { Some((lo, hi)) })
}

/// Specialize a dynamic-range plan to a resolved range: re-run
/// scan-source selection (layer/bucket/est_rows) for the bound window via
/// the same [`choose_source`] path as plan time, and return a fully
/// static clone. The result executes exactly like a plan whose statement
/// spelled the range out in literals.
pub(crate) fn specialize_plan(
    plan: &LogicalPlan,
    range: Option<(Timestamp, Timestamp)>,
    table: &TimeSeriesTable,
    catalog: Option<&SampleCatalog>,
) -> Result<LogicalPlan, EngineError> {
    match plan {
        LogicalPlan::Forecast(p) => {
            let range = range.ok_or_else(|| {
                EngineError::Config("FORECAST window must bound both ends".to_string())
            })?;
            Ok(LogicalPlan::Forecast(specialize_forecast(p, range, table, catalog)?))
        }
        LogicalPlan::Select(p) => {
            Ok(LogicalPlan::Select(specialize_select(p, range, table, catalog)?))
        }
    }
}

/// [`specialize_plan`] for a FORECAST plan and a resolved window.
pub(crate) fn specialize_forecast(
    plan: &ForecastPlan,
    (s, e): (Timestamp, Timestamp),
    table: &TimeSeriesTable,
    catalog: Option<&SampleCatalog>,
) -> Result<ForecastPlan, EngineError> {
    Ok(ForecastPlan {
        range: TimeRangeSlot::Static(Some((s, e))),
        source: SourceSlot::Planned(choose_source(table, catalog, plan.measure, s, e, plan.rate)?),
        ..plan.clone()
    })
}

/// [`specialize_plan`] for a SELECT plan and a resolved, clamped range.
pub(crate) fn specialize_select(
    plan: &SelectPlan,
    range: Option<(Timestamp, Timestamp)>,
    table: &TimeSeriesTable,
    catalog: Option<&SampleCatalog>,
) -> Result<SelectPlan, EngineError> {
    let (range, source) = match range {
        // Empty clamped range: the same degenerate zero-row full scan the
        // planner emits for literal out-of-table bounds.
        None => {
            (TimeRangeSlot::Static(None), SourceSlot::Planned(ScanSource::FullScan { est_rows: 0 }))
        }
        Some((lo, hi)) => (
            TimeRangeSlot::Static(Some((lo, hi))),
            SourceSlot::Planned(choose_source(table, catalog, plan.measure, lo, hi, plan.rate)?),
        ),
    };
    Ok(SelectPlan { range, source, ..plan.clone() })
}

/// Choose the scan source for a query over `[start, end]` at `rate` —
/// shared by plan-time selection and bind-time specialization of
/// parameterized ranges.
pub(crate) fn choose_source(
    table: &TimeSeriesTable,
    catalog: Option<&SampleCatalog>,
    measure: usize,
    start: Timestamp,
    end: Timestamp,
    rate: f64,
) -> Result<ScanSource, EngineError> {
    if rate >= 1.0 {
        let est_rows = table.partitions_in(start, end).map(|(_, p)| p.num_rows()).sum();
        return Ok(ScanSource::FullScan { est_rows });
    }
    let catalog = catalog.ok_or_else(EngineError::no_samples)?;
    catalog.check_schema(table)?;
    let (layer_idx, layer) = catalog.select_layer(rate).ok_or_else(EngineError::no_samples)?;
    let rationale = if layer.rate >= rate {
        format!("cheapest layer with rate >= requested {rate}")
    } else {
        format!("densest available layer (no layer covers requested rate {rate})")
    };
    Ok(ScanSource::SampleLayer {
        layer: layer_idx,
        rate: layer.rate,
        sampler: layer.sampler_label.clone(),
        bucket: layer.bucket_for(measure),
        est_rows: layer.rows_in_range(measure, start, end),
        rationale,
        catalog_version: catalog.version(),
    })
}

/// Plans statements against a table + configuration + optional catalog.
pub struct Planner<'a> {
    table: &'a TimeSeriesTable,
    config: &'a EngineConfig,
    catalog: Option<&'a SampleCatalog>,
}

impl<'a> Planner<'a> {
    /// A planner over one table + configuration + optional catalog
    /// snapshot (everything borrowed for the planning call only).
    pub fn new(
        table: &'a TimeSeriesTable,
        config: &'a EngineConfig,
        catalog: Option<&'a SampleCatalog>,
    ) -> Self {
        Planner { table, config, catalog }
    }

    /// Plan any statement. `EXPLAIN` plans its inner statement (rendering
    /// is the caller's concern).
    pub fn plan(&self, stmt: &Statement) -> Result<LogicalPlan, EngineError> {
        match stmt {
            Statement::Forecast(s) => Ok(LogicalPlan::Forecast(self.plan_forecast(s)?)),
            Statement::Select(s) => Ok(LogicalPlan::Select(self.plan_select(s)?)),
            Statement::Explain(inner) => self.plan(inner),
        }
    }

    fn check_table(&self, name: &str) -> Result<(), EngineError> {
        if let Some(expected) = &self.config.table_name {
            if !expected.eq_ignore_ascii_case(name) {
                return Err(EngineError::Config(format!(
                    "unknown table '{name}' (registered: '{expected}')"
                )));
            }
        }
        Ok(())
    }

    fn resolve_measure(&self, name: &str, agg: AggFunc) -> Result<usize, EngineError> {
        if name == "*" {
            if agg != AggFunc::Count {
                return Err(EngineError::Config("'*' is only valid in COUNT(*)".to_string()));
            }
            // COUNT(*) needs no measure values; use column 0 for masking.
            return Ok(0);
        }
        Ok(self.table.schema().measure_index(name)?)
    }

    /// Compile a (time-free) constraint now, or keep it as a template when
    /// it contains `?` placeholders.
    fn predicate_slot(&self, constraint: &Expr) -> Result<PredicateSlot, EngineError> {
        let num_params = constraint.num_params();
        if num_params > 0 {
            // Literal types (and thus full compilation) depend on the
            // values bound later, but column names can — and must — be
            // validated now so prepare() rejects typos before traffic.
            self.check_template_columns(constraint)?;
            return Ok(PredicateSlot::Template { constraint: constraint.clone(), num_params });
        }
        let predicate = bind_expr(constraint)?;
        Ok(PredicateSlot::Compiled(self.table.compile_predicate(&predicate)?))
    }

    /// Every column a template constraint references must exist in the
    /// schema (type checks happen per binding, where literal types are
    /// known).
    fn check_template_columns(&self, constraint: &Expr) -> Result<(), EngineError> {
        match constraint {
            Expr::Cmp { column, .. } | Expr::In { column, .. } | Expr::Between { column, .. } => {
                self.table.schema().dimension_index(column)?;
                Ok(())
            }
            Expr::And(children) | Expr::Or(children) => {
                children.iter().try_for_each(|c| self.check_template_columns(c))
            }
            Expr::Not(child) => self.check_template_columns(child),
            Expr::True => Ok(()),
        }
    }

    /// Plan-time validation for a parameterized window: everything that
    /// does not depend on the bound range — catalog presence, schema
    /// compatibility, layer availability, table non-emptiness — fails at
    /// prepare time, not on the first binding.
    fn check_dynamic_source(&self, rate: f64) -> Result<(), EngineError> {
        if rate < 1.0 {
            let catalog = self.catalog.ok_or_else(EngineError::no_samples)?;
            catalog.check_schema(self.table)?;
            catalog.select_layer(rate).ok_or_else(EngineError::no_samples)?;
        }
        self.table.time_bounds().ok_or_else(|| EngineError::Config("empty table".to_string()))?;
        Ok(())
    }

    /// Plan a FORECAST statement: resolve names and options, validate the
    /// window and model, choose the serving layer. With `USING (?, ?)`
    /// the window (and hence the range clamp + layer row counts) stays
    /// dynamic; every other plan constant is still resolved here.
    pub fn plan_forecast(&self, stmt: &ForecastStmt) -> Result<ForecastPlan, EngineError> {
        self.check_table(&stmt.table)?;
        let measure = self.resolve_measure(&stmt.measure, stmt.agg)?;
        let predicate = self.predicate_slot(&stmt.constraint)?;
        // Options.
        let rate = sample_rate_option(stmt.option("SAMPLE_RATE"), self.config.default_rate)?;
        let model = match stmt.option("MODEL") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| EngineError::Config("MODEL must be a string".to_string()))?
                .to_string(),
            None => self.config.default_model.clone(),
        };
        // Validate the model name at plan time so prepare/EXPLAIN surface
        // typos before any execution.
        build_model(&model)?;
        let horizon = match stmt.option("FORE_PERIOD") {
            Some(v) => {
                let n = v.as_int().ok_or_else(|| {
                    EngineError::Config("FORE_PERIOD must be an integer".to_string())
                })?;
                if n < 1 {
                    return Err(EngineError::Config(format!("FORE_PERIOD {n} must be >= 1")));
                }
                n as usize
            }
            None => self.config.default_horizon,
        };
        let confidence = match stmt.option("CONFIDENCE") {
            Some(v) => v
                .as_float()
                .ok_or_else(|| EngineError::Config("CONFIDENCE must be numeric".to_string()))?,
            None => self.config.default_confidence,
        };
        let noise_aware =
            stmt.option("NOISE_AWARE").and_then(|v| v.as_int()).map(|v| v != 0).unwrap_or(false);
        let fast_sum = stmt
            .option("FAST_SUM")
            .and_then(|v| v.as_int())
            .map(|v| v != 0)
            .unwrap_or(self.config.fast_sum);

        // Literal endpoints are calendar-validated now; `?` endpoints when
        // bound.
        let endpoint = |b: TimeBound| -> Result<TimeEndpoint, EngineError> {
            match b {
                TimeBound::Lit(v) => Ok(TimeEndpoint::Lit(Timestamp::from_yyyymmdd(v)?)),
                TimeBound::Param(i) => Ok(TimeEndpoint::Param { index: i, offset: 0 }),
            }
        };
        let (range, source) = match stmt.using {
            UsingClause::Window { start, end } => match (endpoint(start)?, endpoint(end)?) {
                (TimeEndpoint::Lit(s), TimeEndpoint::Lit(e)) => {
                    if e < s {
                        return Err(EngineError::Config(format!(
                            "USING range is reversed: {s} > {e}"
                        )));
                    }
                    (
                        TimeRangeSlot::Static(Some((s, e))),
                        SourceSlot::Planned(choose_source(
                            self.table,
                            self.catalog,
                            measure,
                            s,
                            e,
                            rate,
                        )?),
                    )
                }
                (s, e) => {
                    self.check_dynamic_source(rate)?;
                    let window = TimeWindow { lower: vec![s], upper: vec![e] };
                    (TimeRangeSlot::Dynamic(window), SourceSlot::Deferred)
                }
            },
            // Relative windows stay dynamic even with a literal day count:
            // the anchor is the table's newest timestamp, which moves on
            // every publish, so range clamp + layer selection re-run per
            // binding against the execution snapshot.
            UsingClause::LastDays(d) => {
                self.check_dynamic_source(rate)?;
                let window = TimeWindow {
                    lower: vec![TimeEndpoint::LastDays(d)],
                    upper: vec![TimeEndpoint::Latest],
                };
                (TimeRangeSlot::Dynamic(window), SourceSlot::Deferred)
            }
        };
        Ok(ForecastPlan {
            agg: stmt.agg,
            measure,
            measure_name: stmt.measure.clone(),
            predicate,
            range,
            rate,
            model,
            horizon,
            confidence,
            noise_aware,
            fast_sum,
            num_params: stmt.num_params(),
            source,
        })
    }

    /// Plan a SELECT query: split the time range out of the constraint,
    /// clamp it to the table, and choose exact scan vs sample layer from
    /// the `SAMPLE_RATE` option (default exact).
    pub fn plan_select(&self, stmt: &SelectStmt) -> Result<SelectPlan, EngineError> {
        self.check_table(&stmt.table)?;
        let measure = self.resolve_measure(&stmt.measure, stmt.agg)?;
        let split = split_select_constraint(stmt)?;
        let predicate = self.predicate_slot(&split.dims)?;
        // SELECT is exact unless a rate is requested.
        let rate = sample_rate_option(stmt.option("SAMPLE_RATE"), 1.0)?;
        let fast_sum = stmt
            .option("FAST_SUM")
            .and_then(|v| v.as_int())
            .map(|v| v != 0)
            .unwrap_or(self.config.fast_sum);
        let num_params = stmt.num_params();
        let make = |range, source| SelectPlan {
            agg: stmt.agg,
            measure,
            measure_name: stmt.measure.clone(),
            predicate: predicate.clone(),
            range,
            rate,
            group_by_time: stmt.group_by_time,
            fast_sum,
            num_params,
            source,
        };
        if split.window.has_params() {
            // `t` compared to `?`: clamp and layer row counts wait for the
            // binding; the range-independent checks still run now.
            self.check_dynamic_source(rate)?;
            return Ok(make(TimeRangeSlot::Dynamic(split.window), SourceSlot::Deferred));
        }
        let (table_lo, table_hi) = self
            .table
            .time_bounds()
            .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
        let (lo, hi) = match split.window.resolve_range(&[], Some(table_hi))? {
            Some((a, b)) => (a.max(table_lo), b.min(table_hi)),
            None => (table_lo, table_hi),
        };
        if hi < lo {
            // Empty range: a degenerate full scan of zero rows.
            return Ok(make(
                TimeRangeSlot::Static(None),
                SourceSlot::Planned(ScanSource::FullScan { est_rows: 0 }),
            ));
        }
        let source = choose_source(self.table, self.catalog, measure, lo, hi, rate)?;
        Ok(make(TimeRangeSlot::Static(Some((lo, hi))), SourceSlot::Planned(source)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplerChoice;
    use crate::test_support::test_table;
    use flashp_query::parse;

    fn planned(sql: &str, rates: &[f64]) -> LogicalPlan {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: rates.to_vec(),
            sampler: SamplerChoice::OptimalGsw,
            default_rate: 0.05,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        let planner = Planner::new(&table, &config, Some(&catalog));
        planner.plan(&parse(sql).unwrap()).unwrap()
    }

    #[test]
    fn forecast_plan_resolves_everything() {
        let plan = planned(
            "FORECAST SUM(m2) FROM T WHERE seg <= 5 USING (20200101, 20200202) \
             OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
            &[0.2, 0.05],
        );
        let LogicalPlan::Forecast(p) = plan else { panic!("expected forecast plan") };
        assert_eq!(p.measure, 1);
        assert_eq!(p.model, "ar(7)");
        assert_eq!(p.horizon, 5);
        assert_eq!(p.rate, 0.05);
        assert!(matches!(p.predicate, PredicateSlot::Compiled(_)));
        let SourceSlot::Planned(ScanSource::SampleLayer { rate, bucket, est_rows, .. }) = &p.source
        else {
            panic!("expected a sample layer source")
        };
        assert_eq!(*rate, 0.05);
        assert_eq!(*bucket, 1, "per-measure sampler serves m2 from bucket 1");
        assert!(*est_rows > 0);
    }

    #[test]
    fn parameterized_plan_keeps_template() {
        let plan =
            planned("FORECAST SUM(m1) FROM T WHERE seg <= ? USING (20200101, 20200202)", &[0.2]);
        assert_eq!(plan.num_params(), 1);
        let LogicalPlan::Forecast(p) = plan else { panic!() };
        assert!(matches!(p.predicate, PredicateSlot::Template { num_params: 1, .. }));
    }

    #[test]
    fn select_plan_clamps_range() {
        let plan = planned(
            "SELECT SUM(m1) FROM T WHERE t >= 20191201 AND t <= 20200103 GROUP BY t",
            &[0.2],
        );
        let LogicalPlan::Select(p) = plan else { panic!() };
        let TimeRangeSlot::Static(Some((lo, hi))) = p.range else {
            panic!("expected static range")
        };
        assert_eq!(lo.to_yyyymmdd(), 20200101, "clamped to the table start");
        assert_eq!(hi.to_yyyymmdd(), 20200103);
        assert!(matches!(
            p.source,
            SourceSlot::Planned(ScanSource::FullScan { est_rows }) if est_rows == 1200
        ));
    }

    #[test]
    fn select_sample_rate_option_plans_a_layer() {
        let plan = planned("SELECT SUM(m1) FROM T GROUP BY t OPTION (SAMPLE_RATE = 0.2)", &[0.2]);
        let LogicalPlan::Select(p) = plan else { panic!() };
        assert!(matches!(
            p.source,
            SourceSlot::Planned(ScanSource::SampleLayer { rate, .. }) if rate == 0.2
        ));
    }

    #[test]
    fn parameterized_window_defers_range_and_source() {
        let plan = planned("FORECAST SUM(m1) FROM T WHERE seg <= ? USING (?, ?)", &[0.2, 0.05]);
        assert_eq!(plan.num_params(), 3, "constraint + two window params");
        let LogicalPlan::Forecast(p) = &plan else { panic!() };
        assert!(p.range.is_dynamic());
        assert_eq!(p.source, SourceSlot::Deferred);
        assert!(p.source.planned().is_err(), "deferred source is a typed error, not a panic");
        assert!(p.window().is_err(), "unresolved window is a typed error");
        // Model/option validation still happened at plan time.
        assert_eq!(p.model, "arima");
    }

    #[test]
    fn specializing_matches_the_literal_plan() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::OptimalGsw,
            default_rate: 0.05,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        let planner = Planner::new(&table, &config, Some(&catalog));
        let dynamic = planner
            .plan(&parse("FORECAST SUM(m2) FROM T WHERE seg <= 5 USING (?, ?)").unwrap())
            .unwrap();
        let LogicalPlan::Forecast(d) = &dynamic else { panic!() };
        let TimeRangeSlot::Dynamic(window) = &d.range else { panic!() };
        let params = [Literal::Int(20200101), Literal::Int(20200202)];
        let range = resolve_forecast_window(window, &params, &table).unwrap();
        let specialized = specialize_plan(&dynamic, Some(range), &table, Some(&catalog)).unwrap();
        let literal = planner
            .plan(
                &parse("FORECAST SUM(m2) FROM T WHERE seg <= 5 USING (20200101, 20200202)")
                    .unwrap(),
            )
            .unwrap();
        let (LogicalPlan::Forecast(s), LogicalPlan::Forecast(l)) = (&specialized, &literal) else {
            panic!()
        };
        assert_eq!(s.range, l.range);
        assert_eq!(s.source, l.source, "bind-time layer re-selection matches plan time");
    }

    #[test]
    fn last_days_plans_dynamic_and_resolves_to_the_trailing_window() {
        let table = test_table(); // 40 days: 20200101..20200209
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::OptimalGsw,
            default_rate: 0.05,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        let planner = Planner::new(&table, &config, Some(&catalog));

        let dynamic = planner
            .plan(&parse("FORECAST SUM(m2) FROM T WHERE seg <= 5 USING LAST 10 DAYS").unwrap())
            .unwrap();
        let LogicalPlan::Forecast(d) = &dynamic else { panic!() };
        let TimeRangeSlot::Dynamic(window) = &d.range else {
            panic!("relative windows must defer even with a literal day count")
        };
        assert_eq!(window.to_string(), "last 10 days");
        assert_eq!(d.source, SourceSlot::Deferred);
        let range = resolve_forecast_window(window, &[], &table).unwrap();
        assert_eq!(range.0.to_yyyymmdd(), 20200131);
        assert_eq!(range.1.to_yyyymmdd(), 20200209);

        // Specializing to the resolved range matches the literal plan.
        let specialized = specialize_plan(&dynamic, Some(range), &table, Some(&catalog)).unwrap();
        let literal = planner
            .plan(
                &parse("FORECAST SUM(m2) FROM T WHERE seg <= 5 USING (20200131, 20200209)")
                    .unwrap(),
            )
            .unwrap();
        let (LogicalPlan::Forecast(s), LogicalPlan::Forecast(l)) = (&specialized, &literal) else {
            panic!()
        };
        assert_eq!(s.range, l.range);
        assert_eq!(s.source, l.source);

        // A count longer than the table clamps to the table's first day.
        let long = planner.plan(&parse("FORECAST SUM(m2) FROM T USING LAST 1000 DAYS").unwrap());
        let LogicalPlan::Forecast(p) = long.unwrap() else { panic!() };
        let TimeRangeSlot::Dynamic(w) = &p.range else { panic!() };
        let range = resolve_forecast_window(w, &[], &table).unwrap();
        assert_eq!(range.0.to_yyyymmdd(), 20200101);

        // Parameterized day count resolves per binding with typed errors.
        let pd = planner.plan(&parse("FORECAST SUM(m2) FROM T USING LAST ? DAYS").unwrap());
        let plan = pd.unwrap();
        assert_eq!(plan.num_params(), 1);
        let LogicalPlan::Forecast(p) = &plan else { panic!() };
        let TimeRangeSlot::Dynamic(w) = &p.range else { panic!() };
        assert_eq!(w.to_string(), "last ?0 days");
        let r = resolve_forecast_window(w, &[Literal::Int(1)], &table).unwrap();
        assert_eq!(r.0, r.1, "LAST 1 DAYS is just the newest day");
        assert!(matches!(
            resolve_forecast_window(w, &[Literal::Int(-3)], &table),
            Err(EngineError::Parameter(m)) if m.contains("positive")
        ));
    }

    #[test]
    fn dynamic_window_binding_errors_are_typed() {
        let table = test_table();
        let window = TimeWindow {
            lower: vec![TimeEndpoint::Param { index: 0, offset: 0 }],
            upper: vec![TimeEndpoint::Param { index: 1, offset: 0 }],
        };
        // Reversed window.
        let params = [Literal::Int(20200301), Literal::Int(20200101)];
        let Err(EngineError::Config(msg)) = resolve_forecast_window(&window, &params, &table)
        else {
            panic!("reversed range must be a Config error")
        };
        assert!(msg.contains("reversed"));
        // Impossible date.
        let params = [Literal::Int(20200230), Literal::Int(20200301)];
        assert!(matches!(
            resolve_forecast_window(&window, &params, &table),
            Err(EngineError::Parameter(m)) if m.contains("?0")
        ));
        // SELECT: inverted bounds clamp to an empty (None) range.
        let params = [Literal::Int(20200301), Literal::Int(20200101)];
        assert_eq!(resolve_select_range(&window, &params, &table).unwrap(), None);
        // SELECT: a window entirely past the table clamps empty too.
        let params = [Literal::Int(20300101), Literal::Int(20300131)];
        assert_eq!(resolve_select_range(&window, &params, &table).unwrap(), None);
    }

    #[test]
    fn missing_catalog_fails_at_plan_time() {
        let table = test_table();
        let config = EngineConfig::default();
        let planner = Planner::new(&table, &config, None);
        let stmt = parse("FORECAST SUM(m1) FROM T USING (20200101, 20200110)").unwrap();
        assert!(matches!(planner.plan(&stmt), Err(EngineError::SamplesUnavailable(_))));
        // Exact queries plan fine without a catalog.
        let stmt =
            parse("FORECAST SUM(m1) FROM T USING (20200101, 20200110) OPTION (SAMPLE_RATE = 1.0)")
                .unwrap();
        assert!(planner.plan(&stmt).is_ok());
    }

    #[test]
    fn bad_model_caught_at_plan_time() {
        let table = test_table();
        let config = EngineConfig::default();
        let planner = Planner::new(&table, &config, None);
        let stmt = parse(
            "FORECAST SUM(m1) FROM T USING (20200101, 20200110) \
             OPTION (SAMPLE_RATE = 1.0, MODEL = 'unknown_model')",
        )
        .unwrap();
        assert!(planner.plan(&stmt).is_err());
    }
}
