//! The planning stage of the staged query pipeline:
//! `parse → plan → prepare → execute`.
//!
//! A [`Planner`] turns a parsed [`Statement`] into a typed [`LogicalPlan`]
//! with every name resolved, every option defaulted and validated, the
//! predicate constant-folded against the table's dictionaries, and —
//! for sampled queries — the serving sample layer chosen up front, with
//! its selection rationale recorded. Executing a plan performs no further
//! binding, so a plan (or a [`crate::PreparedQuery`] wrapping one) can run
//! repeatedly and concurrently.

use crate::catalog::SampleCatalog;
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::models::build_model;
use flashp_query::{
    bind_expr, split_select_constraint, Expr, ForecastStmt, OptionValue, SelectStmt, Statement,
};
use flashp_storage::{AggFunc, CompiledPredicate, TimeSeriesTable, Timestamp};

/// Resolve and validate a `SAMPLE_RATE` option (shared by FORECAST and
/// SELECT planning).
fn sample_rate_option(option: Option<&OptionValue>, default: f64) -> Result<f64, EngineError> {
    let rate = match option {
        Some(v) => v
            .as_float()
            .ok_or_else(|| EngineError::Config("SAMPLE_RATE must be numeric".to_string()))?,
        None => default,
    };
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(EngineError::Config(format!("SAMPLE_RATE {rate} outside (0, 1]")));
    }
    Ok(rate)
}

/// Where a plan reads its rows from.
#[derive(Debug, Clone, PartialEq)]
pub enum ScanSource {
    /// Exact scan over the base table partitions in range.
    FullScan {
        /// Base-table rows inside the scan range.
        est_rows: usize,
    },
    /// Estimation from one sample-catalog layer.
    SampleLayer {
        /// Index into the catalog's layer list.
        layer: usize,
        /// The layer's sampling rate.
        rate: f64,
        /// Sampler family label (e.g. `"Optimal GSW"`).
        sampler: String,
        /// Bucket index serving the plan's measure.
        bucket: usize,
        /// Sampled rows inside the scan range (the rows estimation scans).
        est_rows: usize,
        /// Why this layer was chosen over the others.
        rationale: String,
        /// [`SampleCatalog::version`] of the catalog the plan was made
        /// against — reported by `EXPLAIN`. Catalog versions derived via
        /// [`SampleCatalog::apply_delta`] keep the same layer/bucket
        /// structure, so the plan stays executable after a publish; the
        /// version records which samples sized its estimates.
        catalog_version: u64,
    },
}

impl ScanSource {
    /// Sampler label as reported in results (`"full scan"` for exact).
    pub fn sampler_label(&self) -> &str {
        match self {
            ScanSource::FullScan { .. } => "full scan",
            ScanSource::SampleLayer { sampler, .. } => sampler,
        }
    }

    /// Effective rate (`1.0` for exact scans).
    pub fn rate_used(&self) -> f64 {
        match self {
            ScanSource::FullScan { .. } => 1.0,
            ScanSource::SampleLayer { rate, .. } => *rate,
        }
    }

    /// Estimated rows scanned per execution.
    pub fn est_rows(&self) -> usize {
        match self {
            ScanSource::FullScan { est_rows } | ScanSource::SampleLayer { est_rows, .. } => {
                *est_rows
            }
        }
    }
}

/// The predicate of a plan: compiled once at plan time when the statement
/// has no parameters, or kept as a template to be bound per execution.
#[derive(Debug, Clone)]
pub enum PredicateSlot {
    /// Fully compiled (constant-folded, dictionary codes resolved).
    Compiled(CompiledPredicate),
    /// Dimension constraint with `?` placeholders; compiled per binding.
    Template {
        /// The dimension-only constraint, placeholders intact.
        constraint: Expr,
        /// Number of `?` placeholders.
        num_params: usize,
    },
}

impl PredicateSlot {
    /// Number of `?` placeholders this slot needs bound.
    pub fn num_params(&self) -> usize {
        match self {
            PredicateSlot::Compiled(_) => 0,
            PredicateSlot::Template { num_params, .. } => *num_params,
        }
    }
}

/// A fully planned FORECAST task (the two-phase pipeline of §2.1: the
/// per-timestamp aggregation batch of Eq. 4, then model fit + predict).
#[derive(Debug, Clone)]
pub struct ForecastPlan {
    /// Bound aggregate function.
    pub agg: AggFunc,
    /// Resolved measure column index.
    pub measure: usize,
    /// Measure name as written in the statement.
    pub measure_name: String,
    /// Compiled (or templated) dimension constraint `C`.
    pub predicate: PredicateSlot,
    /// Training window (inclusive).
    pub t_start: Timestamp,
    /// End of the training window (inclusive).
    pub t_end: Timestamp,
    /// Requested sampling rate (after defaulting).
    pub rate: f64,
    /// Resolved model name.
    pub model: String,
    /// Forecast horizon (`FORE_PERIOD`).
    pub horizon: usize,
    /// Confidence level for intervals.
    pub confidence: f64,
    /// Noise-aware interval widening (Proposition 1).
    pub noise_aware: bool,
    /// Where the training estimates come from (full scan vs sample layer).
    pub source: ScanSource,
}

/// A fully planned SELECT query.
#[derive(Debug, Clone)]
pub struct SelectPlan {
    /// Bound aggregate function.
    pub agg: AggFunc,
    /// Resolved measure column index.
    pub measure: usize,
    /// Measure name as written in the statement.
    pub measure_name: String,
    /// Compiled (or templated) dimension constraint.
    pub predicate: PredicateSlot,
    /// Scan range clamped to the table's bounds; `None` when the clamped
    /// range is empty (the plan returns zero rows).
    pub range: Option<(Timestamp, Timestamp)>,
    /// One row per timestamp (`GROUP BY t`) vs a single scalar row.
    pub group_by_time: bool,
    /// Where the answer comes from (full scan vs sample layer).
    pub source: ScanSource,
}

/// A typed, executable plan.
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// A planned FORECAST task.
    Forecast(ForecastPlan),
    /// A planned SELECT query.
    Select(SelectPlan),
}

impl LogicalPlan {
    /// Number of `?` placeholders the plan needs bound at execution.
    pub fn num_params(&self) -> usize {
        match self {
            LogicalPlan::Forecast(p) => p.predicate.num_params(),
            LogicalPlan::Select(p) => p.predicate.num_params(),
        }
    }

    /// The plan's scan source.
    pub fn source(&self) -> &ScanSource {
        match self {
            LogicalPlan::Forecast(p) => &p.source,
            LogicalPlan::Select(p) => &p.source,
        }
    }
}

/// Plans statements against a table + configuration + optional catalog.
pub struct Planner<'a> {
    table: &'a TimeSeriesTable,
    config: &'a EngineConfig,
    catalog: Option<&'a SampleCatalog>,
}

impl<'a> Planner<'a> {
    /// A planner over one table + configuration + optional catalog
    /// snapshot (everything borrowed for the planning call only).
    pub fn new(
        table: &'a TimeSeriesTable,
        config: &'a EngineConfig,
        catalog: Option<&'a SampleCatalog>,
    ) -> Self {
        Planner { table, config, catalog }
    }

    /// Plan any statement. `EXPLAIN` plans its inner statement (rendering
    /// is the caller's concern).
    pub fn plan(&self, stmt: &Statement) -> Result<LogicalPlan, EngineError> {
        match stmt {
            Statement::Forecast(s) => Ok(LogicalPlan::Forecast(self.plan_forecast(s)?)),
            Statement::Select(s) => Ok(LogicalPlan::Select(self.plan_select(s)?)),
            Statement::Explain(inner) => self.plan(inner),
        }
    }

    fn check_table(&self, name: &str) -> Result<(), EngineError> {
        if let Some(expected) = &self.config.table_name {
            if !expected.eq_ignore_ascii_case(name) {
                return Err(EngineError::Config(format!(
                    "unknown table '{name}' (registered: '{expected}')"
                )));
            }
        }
        Ok(())
    }

    fn resolve_measure(&self, name: &str, agg: AggFunc) -> Result<usize, EngineError> {
        if name == "*" {
            if agg != AggFunc::Count {
                return Err(EngineError::Config("'*' is only valid in COUNT(*)".to_string()));
            }
            // COUNT(*) needs no measure values; use column 0 for masking.
            return Ok(0);
        }
        Ok(self.table.schema().measure_index(name)?)
    }

    /// Compile a (time-free) constraint now, or keep it as a template when
    /// it contains `?` placeholders.
    fn predicate_slot(&self, constraint: &Expr) -> Result<PredicateSlot, EngineError> {
        let num_params = constraint.num_params();
        if num_params > 0 {
            // Literal types (and thus full compilation) depend on the
            // values bound later, but column names can — and must — be
            // validated now so prepare() rejects typos before traffic.
            self.check_template_columns(constraint)?;
            return Ok(PredicateSlot::Template { constraint: constraint.clone(), num_params });
        }
        let predicate = bind_expr(constraint)?;
        Ok(PredicateSlot::Compiled(self.table.compile_predicate(&predicate)?))
    }

    /// Every column a template constraint references must exist in the
    /// schema (type checks happen per binding, where literal types are
    /// known).
    fn check_template_columns(&self, constraint: &Expr) -> Result<(), EngineError> {
        match constraint {
            Expr::Cmp { column, .. } | Expr::In { column, .. } | Expr::Between { column, .. } => {
                self.table.schema().dimension_index(column)?;
                Ok(())
            }
            Expr::And(children) | Expr::Or(children) => {
                children.iter().try_for_each(|c| self.check_template_columns(c))
            }
            Expr::Not(child) => self.check_template_columns(child),
            Expr::True => Ok(()),
        }
    }

    /// Choose the scan source for a query over `[start, end]` at `rate`.
    fn choose_source(
        &self,
        measure: usize,
        start: Timestamp,
        end: Timestamp,
        rate: f64,
    ) -> Result<ScanSource, EngineError> {
        if rate >= 1.0 {
            let est_rows = self.table.partitions_in(start, end).map(|(_, p)| p.num_rows()).sum();
            return Ok(ScanSource::FullScan { est_rows });
        }
        let catalog = self.catalog.ok_or_else(EngineError::no_samples)?;
        catalog.check_schema(self.table)?;
        let (layer_idx, layer) = catalog.select_layer(rate).ok_or_else(EngineError::no_samples)?;
        let rationale = if layer.rate >= rate {
            format!("cheapest layer with rate >= requested {rate}")
        } else {
            format!("densest available layer (no layer covers requested rate {rate})")
        };
        Ok(ScanSource::SampleLayer {
            layer: layer_idx,
            rate: layer.rate,
            sampler: layer.sampler_label.clone(),
            bucket: layer.bucket_for(measure),
            est_rows: layer.rows_in_range(measure, start, end),
            rationale,
            catalog_version: catalog.version(),
        })
    }

    /// Plan a FORECAST statement: resolve names and options, validate the
    /// window and model, choose the serving layer.
    pub fn plan_forecast(&self, stmt: &ForecastStmt) -> Result<ForecastPlan, EngineError> {
        self.check_table(&stmt.table)?;
        let measure = self.resolve_measure(&stmt.measure, stmt.agg)?;
        let predicate = self.predicate_slot(&stmt.constraint)?;
        let t_start = Timestamp::from_yyyymmdd(stmt.t_start)?;
        let t_end = Timestamp::from_yyyymmdd(stmt.t_end)?;
        if t_end < t_start {
            return Err(EngineError::Config(format!(
                "USING range is reversed: {} > {}",
                stmt.t_start, stmt.t_end
            )));
        }

        // Options.
        let rate = sample_rate_option(stmt.option("SAMPLE_RATE"), self.config.default_rate)?;
        let model = match stmt.option("MODEL") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| EngineError::Config("MODEL must be a string".to_string()))?
                .to_string(),
            None => self.config.default_model.clone(),
        };
        // Validate the model name at plan time so prepare/EXPLAIN surface
        // typos before any execution.
        build_model(&model)?;
        let horizon = match stmt.option("FORE_PERIOD") {
            Some(v) => {
                let n = v.as_int().ok_or_else(|| {
                    EngineError::Config("FORE_PERIOD must be an integer".to_string())
                })?;
                if n < 1 {
                    return Err(EngineError::Config(format!("FORE_PERIOD {n} must be >= 1")));
                }
                n as usize
            }
            None => self.config.default_horizon,
        };
        let confidence = match stmt.option("CONFIDENCE") {
            Some(v) => v
                .as_float()
                .ok_or_else(|| EngineError::Config("CONFIDENCE must be numeric".to_string()))?,
            None => self.config.default_confidence,
        };
        let noise_aware =
            stmt.option("NOISE_AWARE").and_then(|v| v.as_int()).map(|v| v != 0).unwrap_or(false);

        let source = self.choose_source(measure, t_start, t_end, rate)?;
        Ok(ForecastPlan {
            agg: stmt.agg,
            measure,
            measure_name: stmt.measure.clone(),
            predicate,
            t_start,
            t_end,
            rate,
            model,
            horizon,
            confidence,
            noise_aware,
            source,
        })
    }

    /// Plan a SELECT query: split the time range out of the constraint,
    /// clamp it to the table, and choose exact scan vs sample layer from
    /// the `SAMPLE_RATE` option (default exact).
    pub fn plan_select(&self, stmt: &SelectStmt) -> Result<SelectPlan, EngineError> {
        self.check_table(&stmt.table)?;
        let measure = self.resolve_measure(&stmt.measure, stmt.agg)?;
        let split = split_select_constraint(stmt)?;
        let predicate = self.predicate_slot(&split.dims)?;
        // SELECT is exact unless a rate is requested.
        let rate = sample_rate_option(stmt.option("SAMPLE_RATE"), 1.0)?;
        let (table_lo, table_hi) = self
            .table
            .time_bounds()
            .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
        let (lo, hi) = match split.time_range {
            Some((a, b)) => (a.max(table_lo), b.min(table_hi)),
            None => (table_lo, table_hi),
        };
        if hi < lo {
            // Empty range: a degenerate full scan of zero rows.
            return Ok(SelectPlan {
                agg: stmt.agg,
                measure,
                measure_name: stmt.measure.clone(),
                predicate,
                range: None,
                group_by_time: stmt.group_by_time,
                source: ScanSource::FullScan { est_rows: 0 },
            });
        }
        let source = self.choose_source(measure, lo, hi, rate)?;
        Ok(SelectPlan {
            agg: stmt.agg,
            measure,
            measure_name: stmt.measure.clone(),
            predicate,
            range: Some((lo, hi)),
            group_by_time: stmt.group_by_time,
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplerChoice;
    use crate::test_support::test_table;
    use flashp_query::parse;

    fn planned(sql: &str, rates: &[f64]) -> LogicalPlan {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: rates.to_vec(),
            sampler: SamplerChoice::OptimalGsw,
            default_rate: 0.05,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        let planner = Planner::new(&table, &config, Some(&catalog));
        planner.plan(&parse(sql).unwrap()).unwrap()
    }

    #[test]
    fn forecast_plan_resolves_everything() {
        let plan = planned(
            "FORECAST SUM(m2) FROM T WHERE seg <= 5 USING (20200101, 20200202) \
             OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
            &[0.2, 0.05],
        );
        let LogicalPlan::Forecast(p) = plan else { panic!("expected forecast plan") };
        assert_eq!(p.measure, 1);
        assert_eq!(p.model, "ar(7)");
        assert_eq!(p.horizon, 5);
        assert_eq!(p.rate, 0.05);
        assert!(matches!(p.predicate, PredicateSlot::Compiled(_)));
        let ScanSource::SampleLayer { rate, bucket, est_rows, .. } = &p.source else {
            panic!("expected a sample layer source")
        };
        assert_eq!(*rate, 0.05);
        assert_eq!(*bucket, 1, "per-measure sampler serves m2 from bucket 1");
        assert!(*est_rows > 0);
    }

    #[test]
    fn parameterized_plan_keeps_template() {
        let plan =
            planned("FORECAST SUM(m1) FROM T WHERE seg <= ? USING (20200101, 20200202)", &[0.2]);
        assert_eq!(plan.num_params(), 1);
        let LogicalPlan::Forecast(p) = plan else { panic!() };
        assert!(matches!(p.predicate, PredicateSlot::Template { num_params: 1, .. }));
    }

    #[test]
    fn select_plan_clamps_range() {
        let plan = planned(
            "SELECT SUM(m1) FROM T WHERE t >= 20191201 AND t <= 20200103 GROUP BY t",
            &[0.2],
        );
        let LogicalPlan::Select(p) = plan else { panic!() };
        let (lo, hi) = p.range.unwrap();
        assert_eq!(lo.to_yyyymmdd(), 20200101, "clamped to the table start");
        assert_eq!(hi.to_yyyymmdd(), 20200103);
        assert!(matches!(p.source, ScanSource::FullScan { est_rows } if est_rows == 1200));
    }

    #[test]
    fn select_sample_rate_option_plans_a_layer() {
        let plan = planned("SELECT SUM(m1) FROM T GROUP BY t OPTION (SAMPLE_RATE = 0.2)", &[0.2]);
        let LogicalPlan::Select(p) = plan else { panic!() };
        assert!(matches!(p.source, ScanSource::SampleLayer { rate, .. } if rate == 0.2));
    }

    #[test]
    fn missing_catalog_fails_at_plan_time() {
        let table = test_table();
        let config = EngineConfig::default();
        let planner = Planner::new(&table, &config, None);
        let stmt = parse("FORECAST SUM(m1) FROM T USING (20200101, 20200110)").unwrap();
        assert!(matches!(planner.plan(&stmt), Err(EngineError::SamplesUnavailable(_))));
        // Exact queries plan fine without a catalog.
        let stmt =
            parse("FORECAST SUM(m1) FROM T USING (20200101, 20200110) OPTION (SAMPLE_RATE = 1.0)")
                .unwrap();
        assert!(planner.plan(&stmt).is_ok());
    }

    #[test]
    fn bad_model_caught_at_plan_time() {
        let table = test_table();
        let config = EngineConfig::default();
        let planner = Planner::new(&table, &config, None);
        let stmt = parse(
            "FORECAST SUM(m1) FROM T USING (20200101, 20200110) \
             OPTION (SAMPLE_RATE = 1.0, MODEL = 'unknown_model')",
        )
        .unwrap();
        assert!(planner.plan(&stmt).is_err());
    }
}
