//! The immutable sample catalog: every layer × bucket × partition sample
//! drawn by the offline preprocessor (§5's *Offline Sample Preprocessor*).
//!
//! [`SampleCatalog::build`] is a free-standing builder — it borrows the
//! table and configuration only for the duration of the build, so the
//! resulting catalog can be wrapped in an [`std::sync::Arc`] and shared by
//! any number of engine handles and prepared queries. Once built, a
//! catalog is never mutated; concurrent readers need no locks.

use crate::config::{EngineConfig, GroupingPolicy, SamplerChoice};
use crate::error::EngineError;
use flashp_sampling::{
    group_measures, GswSampler, PrioritySampler, Sample, SampleSize, Sampler, ThresholdSampler,
    UniformSampler,
};
use flashp_storage::parallel::parallel_map;
use flashp_storage::{TimeSeriesTable, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// One layer of the sample catalog.
pub(crate) struct CatalogLayer {
    pub(crate) rate: f64,
    /// Sample sets; indexing via `measure_bucket`.
    pub(crate) buckets: Vec<BTreeMap<Timestamp, Sample>>,
    /// Bucket index serving each measure.
    pub(crate) measure_bucket: Vec<usize>,
    /// Human-readable sampler label.
    pub(crate) sampler_label: String,
    /// Total sampled rows across buckets (drives the threading decision
    /// at query time: tiny layers are cheaper to scan sequentially).
    pub(crate) total_rows: usize,
}

impl CatalogLayer {
    /// The bucket serving `measure`.
    pub(crate) fn bucket_for(&self, measure: usize) -> usize {
        self.measure_bucket[measure]
    }

    /// Total sampled rows stored for `measure` over `[start, end]` — the
    /// rows an estimation over that range will scan.
    pub(crate) fn rows_in_range(&self, measure: usize, start: Timestamp, end: Timestamp) -> usize {
        self.buckets[self.bucket_for(measure)].range(start..=end).map(|(_, s)| s.num_rows()).sum()
    }
}

/// Per-layer build statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerStats {
    /// Sampling rate of the layer.
    pub rate: f64,
    /// Total sampled rows across buckets and partitions.
    pub rows: usize,
    /// Total bytes across buckets and partitions.
    pub bytes: usize,
}

/// Statistics returned by [`SampleCatalog::build`].
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// Wall-clock build time.
    pub duration: std::time::Duration,
    /// Total bytes across all layers and buckets.
    pub total_bytes: usize,
    /// Per-layer statistics, in configuration order.
    pub layers: Vec<LayerStats>,
    /// Resolved measure groups (empty unless a compressed sampler).
    pub groups: Vec<Vec<usize>>,
}

/// The immutable multi-layer sample catalog.
pub struct SampleCatalog {
    /// Layers sorted by rate descending (selection walks from the back).
    layers: Vec<CatalogLayer>,
    /// Schema of the table the catalog was drawn from; planning validates
    /// it against the serving table so a mismatched catalog is a typed
    /// error, not a panic or a silently wrong answer.
    schema: flashp_storage::SchemaRef,
    stats: BuildStats,
}

impl SampleCatalog {
    /// Run the offline sample preprocessor: draw every layer × bucket ×
    /// partition sample. Deterministic given `config.seed`. Borrows the
    /// table only for the build; the catalog holds copies of the sampled
    /// rows, not references.
    pub fn build(table: &TimeSeriesTable, config: &EngineConfig) -> Result<Self, EngineError> {
        config.validate().map_err(EngineError::Config)?;
        let start_time = Instant::now();
        let num_measures = table.schema().num_measures();
        if num_measures == 0 {
            return Err(EngineError::Config("table has no measures".to_string()));
        }

        // Resolve buckets.
        let (bucket_defs, measure_bucket, groups) = resolve_buckets(table, config, num_measures)?;

        let schema = table.schema().clone();
        let label = config.sampler.label().to_string();
        let parts: Vec<(Timestamp, &flashp_storage::Partition)> = table.partitions().collect();
        let mut layers = Vec::with_capacity(config.layer_rates.len());
        let mut stats_layers = Vec::new();
        let mut total_bytes = 0usize;
        for (layer_idx, &rate) in config.layer_rates.iter().enumerate() {
            let mut buckets = Vec::with_capacity(bucket_defs.len());
            let mut layer_rows = 0usize;
            let mut layer_bytes = 0usize;
            for (bucket_idx, def) in bucket_defs.iter().enumerate() {
                let sampler = make_sampler(&config.sampler, def, rate);
                let seed_base = mix(config.seed, layer_idx as u64, bucket_idx as u64);
                let samples: Vec<Result<Sample, flashp_sampling::SamplingError>> =
                    parallel_map(&parts, config.threads, |(t, p)| {
                        let mut rng = StdRng::seed_from_u64(mix(seed_base, t.0 as u64, 0x5A));
                        sampler.sample(&schema, p, &mut rng)
                    });
                let mut map = BTreeMap::new();
                for ((t, _), s) in parts.iter().zip(samples) {
                    let s = s?;
                    layer_rows += s.num_rows();
                    layer_bytes += s.byte_size();
                    map.insert(*t, s);
                }
                buckets.push(map);
            }
            total_bytes += layer_bytes;
            stats_layers.push(LayerStats { rate, rows: layer_rows, bytes: layer_bytes });
            layers.push(CatalogLayer {
                rate,
                buckets,
                measure_bucket: measure_bucket.clone(),
                sampler_label: label.clone(),
                total_rows: layer_rows,
            });
        }
        // Keep layers sorted by rate descending for selection.
        layers.sort_by(|a, b| b.rate.total_cmp(&a.rate));
        let stats = BuildStats {
            duration: start_time.elapsed(),
            total_bytes,
            layers: stats_layers,
            groups,
        };
        Ok(SampleCatalog { layers, schema, stats })
    }

    /// Build statistics recorded when the catalog was drawn.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Resolved measure groups (empty unless a compressed sampler).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.stats.groups
    }

    /// Schema of the table this catalog was drawn from.
    pub fn schema(&self) -> &flashp_storage::SchemaRef {
        &self.schema
    }

    /// Validate that `table` is the one this catalog describes (same
    /// schema; pointer equality short-circuits the structural compare).
    /// A catalog attached to a table with a different schema would index
    /// measures out of bounds or estimate from unrelated sampled rows.
    pub(crate) fn check_schema(&self, table: &TimeSeriesTable) -> Result<(), EngineError> {
        if std::sync::Arc::ptr_eq(&self.schema, table.schema()) || *self.schema == **table.schema()
        {
            return Ok(());
        }
        Err(EngineError::Config(
            "sample catalog was built for a table with a different schema".to_string(),
        ))
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The cheapest layer whose rate still covers `rate`, as
    /// `(index, layer)`; falls back to the densest layer when every layer
    /// is sparser than requested. `None` when the catalog has no layers.
    pub(crate) fn select_layer(&self, rate: f64) -> Option<(usize, &CatalogLayer)> {
        self.layers
            .iter()
            .enumerate()
            .rfind(|(_, l)| l.rate >= rate)
            .or_else(|| self.layers.first().map(|l| (0, l)))
    }

    /// Layer by index (as chosen by a plan).
    pub(crate) fn layer(&self, idx: usize) -> &CatalogLayer {
        &self.layers[idx]
    }
}

/// Resolve bucket definitions: which measures each sample set serves.
#[allow(clippy::type_complexity)]
fn resolve_buckets(
    table: &TimeSeriesTable,
    config: &EngineConfig,
    num_measures: usize,
) -> Result<(Vec<Vec<usize>>, Vec<usize>, Vec<Vec<usize>>), EngineError> {
    if config.sampler.per_measure() {
        let defs: Vec<Vec<usize>> = (0..num_measures).map(|j| vec![j]).collect();
        let mapping: Vec<usize> = (0..num_measures).collect();
        return Ok((defs, mapping, Vec::new()));
    }
    if !config.sampler.grouped() {
        // Uniform: one shared bucket.
        return Ok((vec![(0..num_measures).collect()], vec![0; num_measures], Vec::new()));
    }
    // Compressed samplers: need groups.
    let groups: Vec<Vec<usize>> = match &config.grouping {
        GroupingPolicy::Single => vec![(0..num_measures).collect()],
        GroupingPolicy::Explicit(groups) => {
            let mut seen = vec![false; num_measures];
            for g in groups {
                for &j in g {
                    if j >= num_measures || seen[j] {
                        return Err(EngineError::Config(format!(
                            "invalid or duplicate measure {j} in explicit groups"
                        )));
                    }
                    seen[j] = true;
                }
            }
            if seen.iter().any(|s| !s) {
                return Err(EngineError::Config(
                    "explicit groups must cover every measure".to_string(),
                ));
            }
            groups.clone()
        }
        GroupingPolicy::Auto { num_groups } => {
            // Group on a middle partition (representative day).
            let (lo, hi) = table
                .time_bounds()
                .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
            let mid = Timestamp(lo.0 + (hi.0 - lo.0) / 2);
            let partition = table
                .partition(mid)
                .or_else(|| table.partitions().next().map(|(_, p)| p))
                .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
            let all: Vec<usize> = (0..num_measures).collect();
            let mut rng = StdRng::seed_from_u64(mix(config.seed, 0xC1, 0xC2));
            let result = group_measures(partition, &all, *num_groups, 20_000, &mut rng)?;
            result.groups
        }
    };
    let mut mapping = vec![usize::MAX; num_measures];
    for (b, g) in groups.iter().enumerate() {
        for &j in g {
            mapping[j] = b;
        }
    }
    Ok((groups.clone(), mapping, groups))
}

/// Build the sampler instance for one bucket at one rate.
fn make_sampler(
    choice: &SamplerChoice,
    bucket_measures: &[usize],
    rate: f64,
) -> Box<dyn Sampler + Send + Sync> {
    let size = SampleSize::Rate(rate);
    match choice {
        SamplerChoice::Uniform => Box::new(UniformSampler::new(size)),
        SamplerChoice::OptimalGsw => Box::new(GswSampler::optimal(bucket_measures[0], size)),
        SamplerChoice::Priority => Box::new(PrioritySampler::new(bucket_measures[0], size)),
        SamplerChoice::Threshold => Box::new(ThresholdSampler::new(bucket_measures[0], size)),
        SamplerChoice::ArithmeticGsw => {
            Box::new(GswSampler::arithmetic_compressed(bucket_measures.to_vec(), size))
        }
        SamplerChoice::GeometricGsw => {
            Box::new(GswSampler::geometric_compressed(bucket_measures.to_vec(), size))
        }
    }
}

/// SplitMix-style seed mixing.
pub(crate) fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_table;

    #[test]
    fn build_without_engine_borrow() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::Uniform,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        // The table is still freely usable here — no engine was borrowed.
        assert!(table.num_rows() > 0);
        assert_eq!(catalog.num_layers(), 2);
        let stats = catalog.stats();
        assert_eq!(stats.layers.len(), 2);
        for layer in &stats.layers {
            assert!(layer.rows > 0);
            assert!(layer.bytes > 0);
        }
        assert_eq!(stats.total_bytes, stats.layers.iter().map(|l| l.bytes).sum::<usize>());
    }

    #[test]
    fn layer_selection_prefers_cheapest_adequate() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::Uniform,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        // Exactly-matching and in-between rates pick the cheapest layer
        // that still covers the request.
        assert_eq!(catalog.select_layer(0.05).unwrap().1.rate, 0.05);
        assert_eq!(catalog.select_layer(0.1).unwrap().1.rate, 0.2);
        assert_eq!(catalog.select_layer(0.2).unwrap().1.rate, 0.2);
        // Sparser than every layer: fall back to the densest.
        assert_eq!(catalog.select_layer(0.001).unwrap().1.rate, 0.05);
        // Denser than every layer: fall back to the densest.
        assert_eq!(catalog.select_layer(0.5).unwrap().1.rate, 0.2);
    }

    #[test]
    fn rows_in_range_counts_sampled_rows() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2],
            sampler: SamplerChoice::Uniform,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        let (_, layer) = catalog.select_layer(0.2).unwrap();
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        let all = layer.rows_in_range(0, t0, t0 + 39);
        assert_eq!(all, layer.total_rows);
        let half = layer.rows_in_range(0, t0, t0 + 19);
        assert!(half > 0 && half < all);
    }
}
