//! The immutable sample catalog: every layer × bucket × partition sample
//! drawn by the offline preprocessor (§5's *Offline Sample Preprocessor*).
//!
//! [`SampleCatalog::build`] is a free-standing builder — it borrows the
//! table and configuration only for the duration of the build, so the
//! resulting catalog can be wrapped in an [`std::sync::Arc`] and shared by
//! any number of engine handles and prepared queries. Once built, a
//! catalog is never mutated; concurrent readers need no locks.
//!
//! Catalogs are *versioned*: every instance carries a process-unique,
//! monotonically increasing [`SampleCatalog::version`], and
//! [`SampleCatalog::apply_delta`] derives a **new** catalog version from
//! an ingest delta by rebuilding only the (layer, bucket, partition)
//! cells whose source partition changed — unchanged cells are shared
//! between versions via `Arc`, and GSW cells whose Δ grew are absorbed
//! incrementally per §4.1 instead of re-drawn. The derived catalog is
//! bit-for-bit identical to what a full [`SampleCatalog::build`] over the
//! post-ingest table would produce (cell seeds depend only on the
//! configuration seed and the cell's coordinates).

use crate::config::{EngineConfig, GroupingPolicy, SamplerChoice};
use crate::error::EngineError;
use crate::version::CatalogDelta;
use flashp_sampling::{
    group_measures, GswCellState, GswSampler, PrioritySampler, Sample, SampleSize, Sampler,
    SamplingError, ThresholdSampler, UniformSampler,
};
use flashp_storage::parallel::parallel_map;
use flashp_storage::{TimeSeriesTable, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-wide monotone version source shared by sample catalogs and
/// engine snapshots, so "newer" is always comparable across instances.
static NEXT_VERSION: AtomicU64 = AtomicU64::new(1);

/// Allocate the next process-unique version number.
pub(crate) fn next_version_id() -> u64 {
    NEXT_VERSION.fetch_add(1, Ordering::Relaxed)
}

/// Process-wide monotone source for [`CatalogCell::id`]: cell ids are
/// never reused, so a day-partial cached against an id can never be
/// served for a different cell, even across catalog rebuilds.
static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// One (layer, bucket, partition) cell: the materialized sample plus —
/// for GSW-family samplers — the recorded draw state that lets the cell
/// absorb appended rows incrementally (§4.1).
pub(crate) struct CatalogCell {
    /// Process-unique structural identity, minted at construction. The
    /// publish path (`apply_delta`) Arc-shares untouched cells into the
    /// next catalog version, so their ids — and any day partials cached
    /// against them — survive the version swap; absorbed or redrawn cells
    /// are new objects with new ids. This is the invalidation key of the
    /// day-partial cache ([`crate::partial_cache`]).
    pub(crate) id: u64,
    pub(crate) sample: Arc<Sample>,
    /// Incremental-maintenance state; `None` for non-GSW samplers.
    pub(crate) gsw: Option<GswCellState>,
}

impl CatalogCell {
    /// A new cell with a fresh process-unique id.
    pub(crate) fn new(sample: Arc<Sample>, gsw: Option<GswCellState>) -> Self {
        CatalogCell { id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed), sample, gsw }
    }
}

/// One layer of the sample catalog.
pub(crate) struct CatalogLayer {
    pub(crate) rate: f64,
    /// Sample cells; indexing via `measure_bucket`.
    pub(crate) buckets: Vec<BTreeMap<Timestamp, Arc<CatalogCell>>>,
    /// Bucket index serving each measure.
    pub(crate) measure_bucket: Vec<usize>,
    /// Human-readable sampler label.
    pub(crate) sampler_label: String,
    /// Total sampled rows across buckets (drives the threading decision
    /// at query time: tiny layers are cheaper to scan sequentially).
    pub(crate) total_rows: usize,
    /// Index of this layer in the configuration's `layer_rates` (layers
    /// are stored sorted by rate, but cell seeds and build statistics are
    /// keyed by configuration order).
    pub(crate) config_idx: usize,
}

impl CatalogLayer {
    /// The bucket serving `measure`.
    pub(crate) fn bucket_for(&self, measure: usize) -> usize {
        self.measure_bucket[measure]
    }

    /// The sample stored for `(measure, t)`, if any.
    pub(crate) fn sample_at(&self, measure: usize, t: Timestamp) -> Option<&Sample> {
        self.buckets[self.bucket_for(measure)].get(&t).map(|c| &*c.sample)
    }

    /// Total sampled rows stored for `measure` over `[start, end]` — the
    /// rows an estimation over that range will scan.
    pub(crate) fn rows_in_range(&self, measure: usize, start: Timestamp, end: Timestamp) -> usize {
        self.buckets[self.bucket_for(measure)]
            .range(start..=end)
            .map(|(_, c)| c.sample.num_rows())
            .sum()
    }
}

/// Per-layer build statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerStats {
    /// Sampling rate of the layer.
    pub rate: f64,
    /// Total sampled rows across buckets and partitions.
    pub rows: usize,
    /// Total bytes across buckets and partitions.
    pub bytes: usize,
}

/// Statistics returned by [`SampleCatalog::build`].
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// Wall-clock build time.
    pub duration: std::time::Duration,
    /// Total bytes across all layers and buckets.
    pub total_bytes: usize,
    /// Per-layer statistics, in configuration order.
    pub layers: Vec<LayerStats>,
    /// Resolved measure groups (empty unless a compressed sampler).
    pub groups: Vec<Vec<usize>>,
}

/// Statistics returned by [`SampleCatalog::apply_delta`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Cells re-drawn from scratch over their (new or changed) partition.
    pub rebuilt_cells: usize,
    /// GSW cells absorbed incrementally (§4.1): only the appended rows
    /// drew inclusion decisions; evictions walked the stored keys.
    pub absorbed_cells: usize,
    /// Subset of `rebuilt_cells` where a prior cell existed but carried
    /// no absorbable sampler state (uniform/priority/threshold layers),
    /// forcing a full re-draw of an already-sampled day. A nonzero count
    /// under steady append load is the visible cost of running a
    /// stateless sampler online — GSW layers keep this at zero.
    pub fallback_redraws: usize,
}

impl DeltaStats {
    /// Accumulate another publish's counters into this one (the sharded
    /// engine merges per-slot deltas this way).
    pub fn add(&mut self, other: &DeltaStats) {
        self.rebuilt_cells += other.rebuilt_cells;
        self.absorbed_cells += other.absorbed_cells;
        self.fallback_redraws += other.fallback_redraws;
    }
}

/// The immutable multi-layer sample catalog.
pub struct SampleCatalog {
    /// Layers sorted by rate descending (selection walks from the back).
    layers: Vec<CatalogLayer>,
    /// Schema of the table the catalog was drawn from; planning validates
    /// it against the serving table so a mismatched catalog is a typed
    /// error, not a panic or a silently wrong answer.
    schema: flashp_storage::SchemaRef,
    /// Which measures each bucket serves (shared by every layer); kept so
    /// [`SampleCatalog::apply_delta`] can reconstruct each cell's sampler.
    bucket_defs: Vec<Vec<usize>>,
    stats: BuildStats,
    /// Process-unique, monotonically increasing catalog version.
    version: u64,
}

impl SampleCatalog {
    /// Run the offline sample preprocessor: draw every layer × bucket ×
    /// partition sample. Deterministic given `config.seed`. Borrows the
    /// table only for the build; the catalog holds copies of the sampled
    /// rows, not references.
    ///
    /// All cells across every layer and bucket form a **single work
    /// queue** drained by one pool of `config.threads` workers
    /// (dynamically scheduled, so a skewed partition in one layer never
    /// stalls the others and no per-(layer, bucket) pool is respawned).
    /// Every cell's RNG is seeded only from
    /// `(config.seed, layer, bucket, timestamp)`, so the result is
    /// bit-for-bit identical regardless of thread count or completion
    /// order.
    pub fn build(table: &TimeSeriesTable, config: &EngineConfig) -> Result<Self, EngineError> {
        config.validate().map_err(EngineError::Config)?;
        let start_time = Instant::now();
        let num_measures = table.schema().num_measures();
        if num_measures == 0 {
            return Err(EngineError::Config("table has no measures".to_string()));
        }

        // Resolve buckets.
        let (bucket_defs, measure_bucket, groups) = resolve_buckets(table, config, num_measures)?;

        let schema = table.schema().clone();
        let label = config.sampler.label().to_string();
        let parts: Vec<(Timestamp, &flashp_storage::Partition)> = table.partitions().collect();

        // One sampler per (layer, bucket), shared read-only by the pool.
        let samplers: Vec<Vec<CellSampler>> = config
            .layer_rates
            .iter()
            .map(|&rate| {
                bucket_defs.iter().map(|def| make_sampler(&config.sampler, def, rate)).collect()
            })
            .collect();

        // The flat work queue over layer × bucket × partition.
        let tasks: Vec<(usize, usize, Timestamp, &flashp_storage::Partition)> =
            (0..config.layer_rates.len())
                .flat_map(|li| {
                    let parts = &parts;
                    (0..bucket_defs.len())
                        .flat_map(move |bi| parts.iter().map(move |&(t, p)| (li, bi, t, p)))
                })
                .collect();
        let drawn: Vec<Result<(Sample, Option<GswCellState>), SamplingError>> =
            parallel_map(&tasks, config.threads, |&(li, bi, t, p)| {
                let seed_base = mix(config.seed, li as u64, bi as u64);
                let mut rng = StdRng::seed_from_u64(mix(seed_base, t.0 as u64, 0x5A));
                samplers[li][bi].draw(&schema, p, &mut rng)
            });

        // Assemble deterministically in task order.
        let mut buckets_by_layer: Vec<Vec<BTreeMap<Timestamp, Arc<CatalogCell>>>> =
            (0..config.layer_rates.len())
                .map(|_| (0..bucket_defs.len()).map(|_| BTreeMap::new()).collect())
                .collect();
        let mut rows_by_layer = vec![0usize; config.layer_rates.len()];
        let mut bytes_by_layer = vec![0usize; config.layer_rates.len()];
        for (&(li, bi, t, _), cell) in tasks.iter().zip(drawn) {
            let (sample, gsw) = cell?;
            rows_by_layer[li] += sample.num_rows();
            bytes_by_layer[li] += sample.byte_size();
            buckets_by_layer[li][bi].insert(t, Arc::new(CatalogCell::new(Arc::new(sample), gsw)));
        }

        let mut layers = Vec::with_capacity(config.layer_rates.len());
        let mut stats_layers = Vec::new();
        let mut total_bytes = 0usize;
        for (layer_idx, (&rate, buckets)) in
            config.layer_rates.iter().zip(buckets_by_layer).enumerate()
        {
            let layer_rows = rows_by_layer[layer_idx];
            let layer_bytes = bytes_by_layer[layer_idx];
            total_bytes += layer_bytes;
            stats_layers.push(LayerStats { rate, rows: layer_rows, bytes: layer_bytes });
            layers.push(CatalogLayer {
                rate,
                buckets,
                measure_bucket: measure_bucket.clone(),
                sampler_label: label.clone(),
                total_rows: layer_rows,
                config_idx: layer_idx,
            });
        }
        // Keep layers sorted by rate descending for selection.
        layers.sort_by(|a, b| b.rate.total_cmp(&a.rate));
        let stats = BuildStats {
            duration: start_time.elapsed(),
            total_bytes,
            layers: stats_layers,
            groups,
        };
        Ok(SampleCatalog { layers, schema, bucket_defs, stats, version: next_version_id() })
    }

    /// Derive a **new catalog version** from this one after an ingest
    /// delta: only the (layer, bucket, partition) cells whose timestamp
    /// appears in `delta` are recomputed; every other cell is shared with
    /// this catalog via `Arc`. `table` must be the post-ingest table and
    /// `config` the configuration this catalog was built with.
    ///
    /// Changed GSW cells whose recorded Δ can only grow are *absorbed*
    /// incrementally (§4.1's key rule — see
    /// [`flashp_sampling::GswCellState`]); all other changed cells are
    /// re-drawn with their deterministic per-cell seed. Either way the
    /// result is bit-for-bit identical to a full [`SampleCatalog::build`]
    /// over `table`.
    ///
    /// The changed (layer, bucket, day) cells form one work queue drained
    /// by a pool of `config.threads` workers — a one-day publish costs
    /// what it always did, while a bulk backfill recomputes its cells in
    /// parallel. Absorb and re-draw are both deterministic per cell, so
    /// the derived catalog is identical for any thread count.
    pub fn apply_delta(
        &self,
        table: &TimeSeriesTable,
        config: &EngineConfig,
        delta: &CatalogDelta,
    ) -> Result<(SampleCatalog, DeltaStats), EngineError> {
        self.check_schema(table)?;
        let start_time = Instant::now();
        let mut delta_stats = DeltaStats::default();

        // One sampler per (layer, bucket), shared read-only by the pool.
        let samplers: Vec<Vec<CellSampler>> = self
            .layers
            .iter()
            .map(|layer| {
                self.bucket_defs
                    .iter()
                    .map(|def| make_sampler(&config.sampler, def, layer.rate))
                    .collect()
            })
            .collect();

        // Resolve each changed day's partition once (days recorded in
        // the delta but absent from the table contribute no cells).
        let live: Vec<(Timestamp, &flashp_storage::Partition)> =
            delta.changed().filter_map(|&t| table.partition(t).map(|p| (t, p))).collect();

        // The flat work queue over changed cells with a live partition.
        let tasks: Vec<(usize, usize, Timestamp, &flashp_storage::Partition)> = (0..self
            .layers
            .len())
            .flat_map(|lp| {
                let num_buckets = self.layers[lp].buckets.len();
                let live = &live;
                (0..num_buckets).flat_map(move |bi| live.iter().map(move |&(t, p)| (lp, bi, t, p)))
            })
            .collect();
        // One recomputed cell plus its (absorbed, fallback re-draw) flags.
        type RecomputedCell = (Arc<CatalogCell>, bool, bool);
        let recomputed: Vec<Result<RecomputedCell, EngineError>> =
            parallel_map(&tasks, config.threads, |&(lp, bi, t, partition)| {
                let layer = &self.layers[lp];
                let sampler = &samplers[lp][bi];
                let prior = layer.buckets[bi].get(&t);
                let absorbed = match (sampler, prior.and_then(|c| c.gsw.as_ref())) {
                    (CellSampler::Gsw(g), Some(state)) => {
                        g.absorb(state, &self.schema, partition).map_err(EngineError::Sampling)?
                    }
                    _ => None,
                };
                // A prior cell with no sampler state cannot absorb: the
                // re-draw below is a fallback, not first-time work.
                let fallback = prior.is_some_and(|c| c.gsw.is_none());
                Ok(match absorbed {
                    Some((sample, next)) => {
                        (Arc::new(CatalogCell::new(Arc::new(sample), Some(next))), true, false)
                    }
                    None => {
                        let seed_base = mix(config.seed, layer.config_idx as u64, bi as u64);
                        let mut rng = StdRng::seed_from_u64(mix(seed_base, t.0 as u64, 0x5A));
                        let (sample, gsw) = sampler
                            .draw(&self.schema, partition, &mut rng)
                            .map_err(EngineError::Sampling)?;
                        (Arc::new(CatalogCell::new(Arc::new(sample), gsw)), false, fallback)
                    }
                })
            });

        // Merge deterministically: clone each bucket map once (unchanged
        // cells stay Arc-shared with this catalog), then install the
        // recomputed cells in task order.
        let mut buckets_by_layer: Vec<Vec<BTreeMap<Timestamp, Arc<CatalogCell>>>> =
            self.layers.iter().map(|layer| layer.buckets.clone()).collect();
        for (&(lp, bi, t, _), cell) in tasks.iter().zip(recomputed) {
            let (cell, absorbed, fallback) = cell?;
            if absorbed {
                delta_stats.absorbed_cells += 1;
            } else {
                delta_stats.rebuilt_cells += 1;
                if fallback {
                    delta_stats.fallback_redraws += 1;
                }
            }
            buckets_by_layer[lp][bi].insert(t, cell);
        }

        let mut layers = Vec::with_capacity(self.layers.len());
        let mut stats_layers = self.stats.layers.clone();
        let mut total_bytes = 0usize;
        for (layer, buckets) in self.layers.iter().zip(buckets_by_layer) {
            let rows: usize =
                buckets.iter().flat_map(|b| b.values()).map(|c| c.sample.num_rows()).sum();
            let bytes: usize =
                buckets.iter().flat_map(|b| b.values()).map(|c| c.sample.byte_size()).sum();
            total_bytes += bytes;
            stats_layers[layer.config_idx] = LayerStats { rate: layer.rate, rows, bytes };
            layers.push(CatalogLayer {
                rate: layer.rate,
                buckets,
                measure_bucket: layer.measure_bucket.clone(),
                sampler_label: layer.sampler_label.clone(),
                total_rows: rows,
                config_idx: layer.config_idx,
            });
        }
        let stats = BuildStats {
            duration: start_time.elapsed(),
            total_bytes,
            layers: stats_layers,
            groups: self.stats.groups.clone(),
        };
        Ok((
            SampleCatalog {
                layers,
                schema: self.schema.clone(),
                bucket_defs: self.bucket_defs.clone(),
                stats,
                version: next_version_id(),
            },
            delta_stats,
        ))
    }

    /// This catalog's process-unique version. Newer catalogs (from later
    /// [`SampleCatalog::build`]s or [`SampleCatalog::apply_delta`]s)
    /// always compare greater. `EXPLAIN` reports the version a plan was
    /// planned against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Build statistics recorded when the catalog was drawn (or last
    /// updated by [`SampleCatalog::apply_delta`]).
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Resolved measure groups (empty unless a compressed sampler).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.stats.groups
    }

    /// Schema of the table this catalog was drawn from.
    pub fn schema(&self) -> &flashp_storage::SchemaRef {
        &self.schema
    }

    /// The sample serving `measure` at timestamp `t` in layer `layer_idx`
    /// (layers ordered by rate descending) — a diagnostics window used by
    /// equivalence tests; estimation goes through the planner.
    pub fn sample_for(&self, layer_idx: usize, measure: usize, t: Timestamp) -> Option<&Sample> {
        self.layers.get(layer_idx).and_then(|l| l.sample_at(measure, t))
    }

    /// Validate that `table` is the one this catalog describes (same
    /// schema; pointer equality short-circuits the structural compare).
    /// A catalog attached to a table with a different schema would index
    /// measures out of bounds or estimate from unrelated sampled rows.
    pub(crate) fn check_schema(&self, table: &TimeSeriesTable) -> Result<(), EngineError> {
        if std::sync::Arc::ptr_eq(&self.schema, table.schema()) || *self.schema == **table.schema()
        {
            return Ok(());
        }
        Err(EngineError::Config(
            "sample catalog was built for a table with a different schema".to_string(),
        ))
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// The cheapest layer whose rate still covers `rate`, as
    /// `(index, layer)`; falls back to the densest layer when every layer
    /// is sparser than requested. `None` when the catalog has no layers.
    pub(crate) fn select_layer(&self, rate: f64) -> Option<(usize, &CatalogLayer)> {
        self.layers
            .iter()
            .enumerate()
            .rfind(|(_, l)| l.rate >= rate)
            .or_else(|| self.layers.first().map(|l| (0, l)))
    }

    /// Layer by index (as chosen by a plan).
    pub(crate) fn layer(&self, idx: usize) -> &CatalogLayer {
        &self.layers[idx]
    }
}

/// A bucket's sampler: GSW-family samplers are held concretely so cell
/// draws can record incremental-maintenance state; everything else goes
/// through the [`Sampler`] trait object.
enum CellSampler {
    Gsw(GswSampler),
    Dyn(Box<dyn Sampler + Send + Sync>),
}

impl CellSampler {
    /// Draw one cell, recording absorb state for GSW samplers.
    fn draw(
        &self,
        schema: &flashp_storage::SchemaRef,
        partition: &flashp_storage::Partition,
        rng: &mut StdRng,
    ) -> Result<(Sample, Option<GswCellState>), SamplingError> {
        match self {
            CellSampler::Gsw(g) => {
                g.sample_recording(schema, partition, rng).map(|(s, st)| (s, Some(st)))
            }
            CellSampler::Dyn(d) => d.sample(schema, partition, rng).map(|s| (s, None)),
        }
    }
}

/// Resolve bucket definitions: which measures each sample set serves.
#[allow(clippy::type_complexity)]
fn resolve_buckets(
    table: &TimeSeriesTable,
    config: &EngineConfig,
    num_measures: usize,
) -> Result<(Vec<Vec<usize>>, Vec<usize>, Vec<Vec<usize>>), EngineError> {
    if config.sampler.per_measure() {
        let defs: Vec<Vec<usize>> = (0..num_measures).map(|j| vec![j]).collect();
        let mapping: Vec<usize> = (0..num_measures).collect();
        return Ok((defs, mapping, Vec::new()));
    }
    if !config.sampler.grouped() {
        // Uniform: one shared bucket.
        return Ok((vec![(0..num_measures).collect()], vec![0; num_measures], Vec::new()));
    }
    // Compressed samplers: need groups.
    let groups: Vec<Vec<usize>> = match &config.grouping {
        GroupingPolicy::Single => vec![(0..num_measures).collect()],
        GroupingPolicy::Explicit(groups) => {
            let mut seen = vec![false; num_measures];
            for g in groups {
                for &j in g {
                    if j >= num_measures || seen[j] {
                        return Err(EngineError::Config(format!(
                            "invalid or duplicate measure {j} in explicit groups"
                        )));
                    }
                    seen[j] = true;
                }
            }
            if seen.iter().any(|s| !s) {
                return Err(EngineError::Config(
                    "explicit groups must cover every measure".to_string(),
                ));
            }
            groups.clone()
        }
        GroupingPolicy::Auto { num_groups } => {
            // Group on a middle partition (representative day).
            let (lo, hi) = table
                .time_bounds()
                .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
            let mid = Timestamp(lo.0 + (hi.0 - lo.0) / 2);
            let partition = table
                .partition(mid)
                .or_else(|| table.partitions().next().map(|(_, p)| p))
                .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
            let all: Vec<usize> = (0..num_measures).collect();
            let mut rng = StdRng::seed_from_u64(mix(config.seed, 0xC1, 0xC2));
            let result = group_measures(partition, &all, *num_groups, 20_000, &mut rng)?;
            result.groups
        }
    };
    let mut mapping = vec![usize::MAX; num_measures];
    for (b, g) in groups.iter().enumerate() {
        for &j in g {
            mapping[j] = b;
        }
    }
    Ok((groups.clone(), mapping, groups))
}

/// Build the sampler instance for one bucket at one rate.
fn make_sampler(choice: &SamplerChoice, bucket_measures: &[usize], rate: f64) -> CellSampler {
    let size = SampleSize::Rate(rate);
    match choice {
        SamplerChoice::Uniform => CellSampler::Dyn(Box::new(UniformSampler::new(size))),
        SamplerChoice::OptimalGsw => {
            CellSampler::Gsw(GswSampler::optimal(bucket_measures[0], size))
        }
        SamplerChoice::Priority => {
            CellSampler::Dyn(Box::new(PrioritySampler::new(bucket_measures[0], size)))
        }
        SamplerChoice::Threshold => {
            CellSampler::Dyn(Box::new(ThresholdSampler::new(bucket_measures[0], size)))
        }
        SamplerChoice::ArithmeticGsw => {
            CellSampler::Gsw(GswSampler::arithmetic_compressed(bucket_measures.to_vec(), size))
        }
        SamplerChoice::GeometricGsw => {
            CellSampler::Gsw(GswSampler::geometric_compressed(bucket_measures.to_vec(), size))
        }
    }
}

/// SplitMix-style seed mixing.
pub(crate) fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_table;

    #[test]
    fn build_without_engine_borrow() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::Uniform,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        // The table is still freely usable here — no engine was borrowed.
        assert!(table.num_rows() > 0);
        assert_eq!(catalog.num_layers(), 2);
        let stats = catalog.stats();
        assert_eq!(stats.layers.len(), 2);
        for layer in &stats.layers {
            assert!(layer.rows > 0);
            assert!(layer.bytes > 0);
        }
        assert_eq!(stats.total_bytes, stats.layers.iter().map(|l| l.bytes).sum::<usize>());
    }

    #[test]
    fn layer_selection_prefers_cheapest_adequate() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::Uniform,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        // Exactly-matching and in-between rates pick the cheapest layer
        // that still covers the request.
        assert_eq!(catalog.select_layer(0.05).unwrap().1.rate, 0.05);
        assert_eq!(catalog.select_layer(0.1).unwrap().1.rate, 0.2);
        assert_eq!(catalog.select_layer(0.2).unwrap().1.rate, 0.2);
        // Sparser than every layer: fall back to the densest.
        assert_eq!(catalog.select_layer(0.001).unwrap().1.rate, 0.05);
        // Denser than every layer: fall back to the densest.
        assert_eq!(catalog.select_layer(0.5).unwrap().1.rate, 0.2);
    }

    #[test]
    fn rows_in_range_counts_sampled_rows() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2],
            sampler: SamplerChoice::Uniform,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        let (_, layer) = catalog.select_layer(0.2).unwrap();
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        let all = layer.rows_in_range(0, t0, t0 + 39);
        assert_eq!(all, layer.total_rows);
        let half = layer.rows_in_range(0, t0, t0 + 19);
        assert!(half > 0 && half < all);
    }

    #[test]
    fn versions_are_unique_and_monotone() {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2],
            sampler: SamplerChoice::OptimalGsw,
            ..Default::default()
        };
        let a = SampleCatalog::build(&table, &config).unwrap();
        let b = SampleCatalog::build(&table, &config).unwrap();
        assert!(b.version() > a.version());
        let (c, _) = a.apply_delta(&table, &config, &CatalogDelta::default()).unwrap();
        assert!(c.version() > b.version());
    }

    #[test]
    fn delta_shares_unchanged_cells_and_matches_full_rebuild() {
        use flashp_storage::Value;
        let mut table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::OptimalGsw,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();

        // Grow one existing day and add one new day.
        let grown_t = Timestamp::from_yyyymmdd(20200115).unwrap();
        let new_t = Timestamp::from_yyyymmdd(20200210).unwrap();
        let mut delta = CatalogDelta::default();
        for (t, n) in [(grown_t, 300usize), (new_t, 500)] {
            for row in 0..n as i64 {
                table
                    .append_row(
                        t,
                        &[Value::Int(row % 10), Value::from(if row % 2 == 0 { "a" } else { "b" })],
                        &[200.0 + row as f64, 20.0 + row as f64],
                    )
                    .unwrap();
            }
            delta.record(t, n);
        }

        let (derived, stats) = catalog.apply_delta(&table, &config, &delta).unwrap();
        assert!(derived.version() > catalog.version());
        // 2 layers × 2 per-measure buckets × 2 changed days = 8 cells;
        // the grown day's cells absorb when Δ grows, the new day rebuilds.
        assert_eq!(stats.rebuilt_cells + stats.absorbed_cells, 8);
        assert!(stats.absorbed_cells > 0, "grown GSW cells should absorb");

        // Bit-for-bit identical to a full rebuild of the post-ingest
        // table (cell seeds depend only on config + coordinates).
        let full = SampleCatalog::build(&table, &config).unwrap();
        for layer_idx in 0..full.num_layers() {
            for measure in 0..2 {
                for (t, _) in table.partitions() {
                    let a = derived.sample_for(layer_idx, measure, t).unwrap();
                    let b = full.sample_for(layer_idx, measure, t).unwrap();
                    assert_eq!(a.num_rows(), b.num_rows(), "layer {layer_idx} m{measure} {t}");
                    assert_eq!(a.inclusion_probabilities(), b.inclusion_probabilities());
                    assert_eq!(a.rows().measure(measure), b.rows().measure(measure));
                }
            }
        }
        assert_eq!(derived.stats().total_bytes, full.stats().total_bytes);

        // Unchanged cells are physically shared with the parent catalog.
        let untouched = Timestamp::from_yyyymmdd(20200102).unwrap();
        assert!(std::ptr::eq(
            catalog.sample_for(0, 0, untouched).unwrap(),
            derived.sample_for(0, 0, untouched).unwrap()
        ));
        // Changed cells are not.
        assert!(!std::ptr::eq(
            catalog.sample_for(0, 0, grown_t).unwrap(),
            derived.sample_for(0, 0, grown_t).unwrap()
        ));
    }

    /// The single work queue must be bit-for-bit identical to the
    /// sequential build (threads = 1) for any worker count: cell seeds
    /// depend only on (seed, layer, bucket, timestamp), never on
    /// scheduling.
    #[test]
    fn build_is_thread_count_invariant() {
        let table = test_table();
        let base = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::OptimalGsw,
            ..Default::default()
        };
        let sequential =
            SampleCatalog::build(&table, &EngineConfig { threads: 1, ..base.clone() }).unwrap();
        for threads in [2usize, 8] {
            let parallel =
                SampleCatalog::build(&table, &EngineConfig { threads, ..base.clone() }).unwrap();
            assert_eq!(sequential.stats().total_bytes, parallel.stats().total_bytes);
            for layer_idx in 0..sequential.num_layers() {
                for measure in 0..2 {
                    for (t, _) in table.partitions() {
                        let a = sequential.sample_for(layer_idx, measure, t).unwrap();
                        let b = parallel.sample_for(layer_idx, measure, t).unwrap();
                        assert_eq!(a.inclusion_probabilities(), b.inclusion_probabilities());
                        assert_eq!(a.rows().measure(measure), b.rows().measure(measure));
                    }
                }
            }
        }
    }

    /// Parallel apply_delta (multi-day backfill) must equal the
    /// sequential derivation cell for cell, with identical absorb/rebuild
    /// accounting.
    #[test]
    fn apply_delta_is_thread_count_invariant() {
        use flashp_storage::Value;
        let mut table = test_table();
        let base = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::OptimalGsw,
            ..Default::default()
        };
        let catalog =
            SampleCatalog::build(&table, &EngineConfig { threads: 1, ..base.clone() }).unwrap();
        // A bulk backfill: grow three existing days and add two new ones.
        let mut delta = CatalogDelta::default();
        for (ymd, n) in [
            (20200105i64, 150usize),
            (20200115, 200),
            (20200125, 250),
            (20200301, 400),
            (20200302, 300),
        ] {
            let t = Timestamp::from_yyyymmdd(ymd).unwrap();
            for row in 0..n as i64 {
                table
                    .append_row(
                        t,
                        &[Value::Int(row % 10), Value::from(if row % 3 == 0 { "a" } else { "b" })],
                        &[100.0 + row as f64, 10.0 + row as f64],
                    )
                    .unwrap();
            }
            delta.record(t, n);
        }
        let (seq, seq_stats) = catalog
            .apply_delta(&table, &EngineConfig { threads: 1, ..base.clone() }, &delta)
            .unwrap();
        for threads in [2usize, 8] {
            let (par, par_stats) = catalog
                .apply_delta(&table, &EngineConfig { threads, ..base.clone() }, &delta)
                .unwrap();
            assert_eq!(
                seq_stats, par_stats,
                "absorb/rebuild accounting must not depend on threads"
            );
            assert_eq!(seq.stats().total_bytes, par.stats().total_bytes);
            for layer_idx in 0..seq.num_layers() {
                for measure in 0..2 {
                    for (t, _) in table.partitions() {
                        let a = seq.sample_for(layer_idx, measure, t).unwrap();
                        let b = par.sample_for(layer_idx, measure, t).unwrap();
                        assert_eq!(a.inclusion_probabilities(), b.inclusion_probabilities());
                        assert_eq!(a.rows().measure(measure), b.rows().measure(measure));
                    }
                }
            }
        }
        assert!(seq_stats.absorbed_cells > 0, "grown GSW cells should absorb");
        assert!(seq_stats.rebuilt_cells > 0, "new days should rebuild");
    }

    #[test]
    fn delta_matches_full_rebuild_for_every_sampler() {
        use flashp_storage::Value;
        for sampler in [
            SamplerChoice::Uniform,
            SamplerChoice::OptimalGsw,
            SamplerChoice::Priority,
            SamplerChoice::Threshold,
            SamplerChoice::ArithmeticGsw,
            SamplerChoice::GeometricGsw,
        ] {
            let mut table = test_table();
            let config = EngineConfig {
                layer_rates: vec![0.1],
                sampler: sampler.clone(),
                ..Default::default()
            };
            let catalog = SampleCatalog::build(&table, &config).unwrap();
            let t = Timestamp::from_yyyymmdd(20200120).unwrap();
            let mut delta = CatalogDelta::default();
            for row in 0..200i64 {
                table
                    .append_row(t, &[Value::Int(row % 10), Value::from("a")], &[300.0, 30.0])
                    .unwrap();
            }
            delta.record(t, 200);
            let (derived, _) = catalog.apply_delta(&table, &config, &delta).unwrap();
            let full = SampleCatalog::build(&table, &config).unwrap();
            for measure in 0..2 {
                let a = derived.sample_for(0, measure, t).unwrap();
                let b = full.sample_for(0, measure, t).unwrap();
                assert_eq!(a.num_rows(), b.num_rows(), "{}", sampler.label());
                assert_eq!(a.inclusion_probabilities(), b.inclusion_probabilities());
            }
        }
    }

    /// `fallback_redraws` makes the cost of online-publishing a stateless
    /// sampler visible: growing an already-sampled day forces a full
    /// re-draw for uniform/priority/threshold layers (their cells carry
    /// no absorbable state), while brand-new days are ordinary rebuilds
    /// and GSW layers absorb instead.
    #[test]
    fn fallback_redraws_counts_stateless_redraw_cells() {
        use flashp_storage::Value;
        let grown_t = Timestamp::from_yyyymmdd(20200110).unwrap();
        let new_t = Timestamp::from_yyyymmdd(20200215).unwrap();
        for (sampler, expect_fallbacks) in [
            (SamplerChoice::Uniform, 2),
            (SamplerChoice::Priority, 2),
            (SamplerChoice::Threshold, 2),
            (SamplerChoice::OptimalGsw, 0),
        ] {
            let mut table = test_table();
            let config = EngineConfig {
                layer_rates: vec![0.1],
                sampler: sampler.clone(),
                ..Default::default()
            };
            let catalog = SampleCatalog::build(&table, &config).unwrap();
            let mut delta = CatalogDelta::default();
            for t in [grown_t, new_t] {
                for row in 0..300i64 {
                    table
                        .append_row(
                            t,
                            &[Value::Int(row % 10), Value::from("a")],
                            &[200.0 + row as f64, 20.0 + row as f64],
                        )
                        .unwrap();
                }
                delta.record(t, 300);
            }
            let (_, stats) = catalog.apply_delta(&table, &config, &delta).unwrap();
            // Two changed days touch the same cell grid, so the per-day
            // cell count (buckets per layer; sampler-dependent) is half
            // the total recomputed cells.
            let total = stats.rebuilt_cells + stats.absorbed_cells;
            assert_eq!(total % 2, 0, "{}", sampler.label());
            let cells_per_day = total / 2;
            assert!(cells_per_day > 0, "{}", sampler.label());
            // Only the grown day's cells had a prior sample to fall back
            // from; the new day's rebuilds are first-time work.
            let expected = if expect_fallbacks == 0 { 0 } else { cells_per_day };
            assert_eq!(stats.fallback_redraws, expected, "{}", sampler.label());
            assert!(
                stats.fallback_redraws <= stats.rebuilt_cells,
                "fallbacks are a subset of rebuilds"
            );
            if matches!(sampler, SamplerChoice::OptimalGsw) {
                assert!(stats.absorbed_cells > 0, "grown GSW cells should absorb");
            }
        }
    }
}
