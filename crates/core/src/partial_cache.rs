//! Versioned day-partial cache: memoized Horvitz–Thompson day partials
//! that survive re-bindings, publishes, and scatter-gather sharding.
//!
//! FlashP's dashboard workload is repeated FORECAST/SELECT over sliding
//! time windows. Execution already factors into independent
//! (layer, bucket, day) units — `map_days` over sampled cells, per-day
//! partition scans on the exact path — and `apply_delta` Arc-shares
//! unchanged cells across publishes. This module memoizes the per-day
//! results of those units so a re-bound `USING (?, ?)` window only
//! computes days it has never seen.
//!
//! # Key derivation
//!
//! Entries are keyed on `(cell identity, predicate fingerprint, measure,
//! kind)`:
//!
//! * **cell identity** — a process-unique id minted on construction of
//!   each `CatalogCell` (sampled path) or `flashp_storage::Partition`
//!   (exact path) and never reused.
//!   `apply_delta` Arc-shares untouched cells, so their ids survive a
//!   publish; the cells a delta absorbs or redraws are *new* objects with
//!   new ids. Invalidation is therefore structural, not temporal: a
//!   publish invalidates exactly the changed (layer, bucket, day) cells,
//!   and warm days stay warm across version swaps with no purge pass.
//! * **predicate fingerprint** — `predicate_fingerprint`, a type-tagged
//!   FNV-1a walk of the compiled predicate tree (float comparisons hash
//!   their bit patterns; derived lookup structures are excluded).
//! * **measure** — the measure column index.
//! * **kind** — sampled [`EstimateComponents`] vs exact [`AggState`]
//!   (further split by [`SumMode`], whose fast path is reassociated and so
//!   not interchangeable with exact sums).
//!
//! The aggregate function is deliberately **not** part of the key:
//! `estimate_agg_with` is defined as `estimate_components_with(..)?
//! .finalize(agg)`, so cached components finalize to bit-identical
//! estimates for every aggregate.
//!
//! # Bit-identity
//!
//! Cached values are produced by the same functions the uncached path
//! runs — `estimate_components_with` per sampled cell,
//! `flashp_storage::eval_partition_with` per partition — and per-day
//! results are independent of thread count, so assembling cache hits with
//! freshly computed misses in timestamp order is bit-identical to
//! recomputing every day. `crates/core/tests/partial_cache.rs` proves
//! this against the cache-off oracle (`FLASHP_NO_PARTIAL_CACHE=1`).
//!
//! # Placement
//!
//! One cache per engine, owned by the engine's shared state and visible
//! to every handle and prepared query. Under scatter-gather sharding each
//! virtual slot is its own engine and therefore gets its own cache, so
//! cached execution remains bit-for-bit invariant in the shard count.

use crate::config::EngineConfig;
use flashp_sampling::EstimateComponents;
use flashp_storage::{AggState, CmpOp, CompiledPredicate, SumMode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Total entry capacity of a [`PartialCache`] (across its internal lock
/// shards). Each entry is a few dozen bytes, so the default bounds the
/// cache at a handful of megabytes while holding years of daily partials
/// for dozens of distinct (predicate, measure) workloads.
pub(crate) const PARTIAL_CACHE_CAPACITY: usize = 65_536;

/// Internal lock shards; probes hash to one shard so concurrent handles
/// rarely contend.
const LOCK_SHARDS: usize = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `h`.
pub(crate) fn fnv(h: &mut u64, bytes: &[u8]) {
    for b in bytes {
        *h ^= u64::from(*b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// One-shot FNV-1a of `bytes` (used for statement keys in the shared
/// specialization cache).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    fnv(&mut h, bytes);
    h
}

fn fnv_u64(h: &mut u64, v: u64) {
    fnv(h, &v.to_le_bytes());
}

fn op_tag(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn hash_pred(h: &mut u64, pred: &CompiledPredicate) {
    match pred {
        CompiledPredicate::Cmp { dim, op, value } => {
            fnv(h, &[0, op_tag(*op)]);
            fnv_u64(h, *dim as u64);
            fnv_u64(h, *value as u64);
        }
        CompiledPredicate::CmpF64 { dim, op, value } => {
            fnv(h, &[1, op_tag(*op)]);
            fnv_u64(h, *dim as u64);
            fnv_u64(h, value.to_bits());
        }
        // The derived lookup structure is a pure function of `values`, so
        // it is excluded from the fingerprint.
        CompiledPredicate::InSet { dim, values, .. } => {
            fnv(h, &[2]);
            fnv_u64(h, *dim as u64);
            fnv_u64(h, values.len() as u64);
            for v in values {
                fnv_u64(h, *v as u64);
            }
        }
        CompiledPredicate::And(children) => {
            fnv(h, &[3]);
            fnv_u64(h, children.len() as u64);
            for c in children {
                hash_pred(h, c);
            }
        }
        CompiledPredicate::Or(children) => {
            fnv(h, &[4]);
            fnv_u64(h, children.len() as u64);
            for c in children {
                hash_pred(h, c);
            }
        }
        CompiledPredicate::Not(inner) => {
            fnv(h, &[5]);
            hash_pred(h, inner);
        }
        CompiledPredicate::Const(b) => {
            fnv(h, &[6, u8::from(*b)]);
        }
    }
}

/// Type-tagged FNV-1a fingerprint of a compiled predicate tree. Two
/// predicates with equal fingerprints select the same rows (modulo the
/// 64-bit collision probability); structurally distinct trees get
/// distinct tags so `And([x])` and `Or([x])` cannot collide by layout.
pub(crate) fn predicate_fingerprint(pred: &CompiledPredicate) -> u64 {
    let mut h = FNV_OFFSET;
    hash_pred(&mut h, pred);
    h
}

/// Cache-key `kind` discriminants: sampled components vs exact states per
/// [`SumMode`]. Exact and fast sums are distinct contracts (fast is
/// reassociated), so they never share entries.
const KIND_SAMPLED: u8 = 0;

fn exact_kind(sum: SumMode) -> u8 {
    match sum {
        SumMode::Exact => 1,
        SumMode::Fast => 2,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    cell: u64,
    pred: u64,
    measure: u32,
    kind: u8,
}

impl Key {
    fn shard(&self) -> usize {
        // Cell ids are sequential; fold the other fields in and spread
        // with an FNV round so neighbours land on different locks.
        let mut h = FNV_OFFSET ^ self.pred;
        fnv_u64(&mut h, self.cell);
        fnv(&mut h, &[self.kind]);
        fnv_u64(&mut h, u64::from(self.measure));
        (h as usize) % LOCK_SHARDS
    }
}

/// A memoized day partial: the HT estimate components of one sampled
/// cell, or the exact aggregate state of one partition.
#[derive(Debug, Clone, Copy)]
enum Partial {
    Sampled(EstimateComponents),
    Exact(AggState),
}

struct Entry {
    last_used: u64,
    value: Partial,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Key, Entry>,
    tick: u64,
}

/// Counter snapshot of a [`PartialCache`] (or a sum over several — see
/// [`PartialCacheStats::add`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PartialCacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that required computing the day partial.
    pub misses: u64,
    /// Entries displaced by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl PartialCacheStats {
    /// Accumulate another snapshot into this one (used to aggregate a
    /// shard's per-slot caches into one wire-visible counter set).
    pub fn add(&mut self, other: &PartialCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries += other.entries;
    }
}

/// Sharded, bounded LRU of day partials. See the module docs for key
/// derivation and invalidation; construction and placement live in the
/// engine (`EngineShared`).
pub struct PartialCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PartialCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PartialCache")
            .field("capacity", &(self.per_shard_capacity * LOCK_SHARDS))
            .field("stats", &stats)
            .finish()
    }
}

impl PartialCache {
    /// A cache bounded at `capacity` total entries.
    pub(crate) fn new(capacity: usize) -> Self {
        PartialCache {
            shards: (0..LOCK_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(LOCK_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn get(&self, key: Key) -> Option<Partial> {
        let mut shard = self.shards[key.shard()].lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: Key, value: Partial) {
        let mut shard = self.shards[key.shard()].lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                shard.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.map.insert(key, Entry { last_used: tick, value });
    }

    /// Look up the memoized components of sampled cell `cell` under
    /// predicate fingerprint `pred` for `measure`. Counts a hit or miss.
    pub(crate) fn get_components(
        &self,
        cell: u64,
        pred: u64,
        measure: usize,
    ) -> Option<EstimateComponents> {
        match self.get(Key { cell, pred, measure: measure as u32, kind: KIND_SAMPLED }) {
            Some(Partial::Sampled(c)) => Some(c),
            _ => None,
        }
    }

    /// Memoize the components of sampled cell `cell`.
    pub(crate) fn put_components(
        &self,
        cell: u64,
        pred: u64,
        measure: usize,
        value: EstimateComponents,
    ) {
        self.insert(
            Key { cell, pred, measure: measure as u32, kind: KIND_SAMPLED },
            Partial::Sampled(value),
        );
    }

    /// Look up the memoized exact [`AggState`] of partition `cell` under
    /// predicate fingerprint `pred` for `measure` and sum mode `sum`.
    pub(crate) fn get_exact(
        &self,
        cell: u64,
        pred: u64,
        measure: usize,
        sum: SumMode,
    ) -> Option<AggState> {
        match self.get(Key { cell, pred, measure: measure as u32, kind: exact_kind(sum) }) {
            Some(Partial::Exact(s)) => Some(s),
            _ => None,
        }
    }

    /// Memoize the exact [`AggState`] of partition `cell`.
    pub(crate) fn put_exact(
        &self,
        cell: u64,
        pred: u64,
        measure: usize,
        sum: SumMode,
        value: AggState,
    ) {
        self.insert(
            Key { cell, pred, measure: measure as u32, kind: exact_kind(sum) },
            Partial::Exact(value),
        );
    }

    /// Whether the sampled-component entry for `(cell, pred, measure)` is
    /// resident, without bumping any counter or LRU clock. EXPLAIN uses
    /// this to render the warm/cold day split of a bound window.
    pub(crate) fn peek_components(&self, cell: u64, pred: u64, measure: usize) -> bool {
        let key = Key { cell, pred, measure: measure as u32, kind: KIND_SAMPLED };
        self.shards[key.shard()].lock().unwrap().map.contains_key(&key)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PartialCacheStats {
        PartialCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum(),
        }
    }
}

/// Whether the day-partial cache is active for `config`: on by default,
/// disabled by `partial_cache: false` or the `FLASHP_NO_PARTIAL_CACHE=1`
/// environment override (the CI cache-off oracle).
pub(crate) fn enabled(config: &EngineConfig) -> bool {
    config.partial_cache
        && !matches!(
            std::env::var("FLASHP_NO_PARTIAL_CACHE").ok().as_deref(),
            Some(v) if !v.is_empty() && v != "0"
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_structure() {
        // Built directly (the planner would fold single-child AND/OR
        // away): structurally distinct trees must not collide by layout.
        let cmp = CompiledPredicate::Cmp { dim: 0, op: CmpOp::Lt, value: 5 };
        let a = cmp.clone();
        let b = CompiledPredicate::Cmp { dim: 0, op: CmpOp::Le, value: 5 };
        let c = CompiledPredicate::Cmp { dim: 1, op: CmpOp::Lt, value: 5 };
        let and = CompiledPredicate::And(vec![cmp.clone()]);
        let or = CompiledPredicate::Or(vec![cmp]);
        let fps = [&a, &b, &c, &and, &or].map(predicate_fingerprint);
        for i in 0..fps.len() {
            for j in 0..fps.len() {
                if i != j {
                    assert_ne!(fps[i], fps[j], "fingerprints {i} and {j} collide");
                }
            }
        }
        assert_eq!(predicate_fingerprint(&a), predicate_fingerprint(&a));
    }

    #[test]
    fn lru_evicts_and_counts() {
        let cache = PartialCache::new(LOCK_SHARDS); // one entry per lock shard
        let c = EstimateComponents { sum_hat: 1.0, ..Default::default() };
        for cell in 0..64u64 {
            assert!(cache.get_components(cell, 7, 0).is_none());
            cache.put_components(cell, 7, 0, c);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 64);
        assert_eq!(stats.entries, LOCK_SHARDS);
        assert_eq!(stats.evictions as usize, 64 - LOCK_SHARDS);
        // Most-recent inserts are resident.
        let resident = (0..64u64).filter(|&cell| cache.peek_components(cell, 7, 0)).count();
        assert_eq!(resident, LOCK_SHARDS);
        assert_eq!(cache.stats().hits, 0, "peek must not count");
    }

    #[test]
    fn kinds_do_not_alias() {
        let cache = PartialCache::new(16);
        cache.put_components(1, 2, 3, EstimateComponents::default());
        assert!(cache.get_exact(1, 2, 3, SumMode::Exact).is_none());
        cache.put_exact(1, 2, 3, SumMode::Exact, AggState { sum: 5.0, count: 2 });
        assert!(cache.get_exact(1, 2, 3, SumMode::Fast).is_none());
        assert_eq!(cache.get_exact(1, 2, 3, SumMode::Exact), Some(AggState { sum: 5.0, count: 2 }));
        assert!(cache.get_components(1, 2, 3).is_some());
    }
}
