//! Result types returned by the engine: estimated training series,
//! forecasts with intervals, and the timing breakdown of Fig. 7.

use flashp_storage::Timestamp;
use std::time::Duration;

/// One estimated historical point `M̂_t` with its HT variance estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// The timestamp the aggregate describes.
    pub t: Timestamp,
    /// The (estimated or exact) aggregate value `M̂_t`.
    pub value: f64,
    /// Estimator variance (σ_ε² at this timestamp), when available.
    pub variance: Option<f64>,
}

/// One forecast point with its interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastOut {
    /// The future timestamp the forecast describes.
    pub t: Timestamp,
    /// Point forecast.
    pub value: f64,
    /// Lower bound of the confidence interval.
    pub lo: f64,
    /// Upper bound of the confidence interval.
    pub hi: f64,
    /// Standard error of the point forecast.
    pub std_err: f64,
}

/// Wall-clock breakdown of a forecasting task — the two bars of Fig. 7:
/// processing (estimating) aggregation queries vs model fitting +
/// prediction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timing {
    /// Time spent estimating the per-timestamp aggregates (Eq. 4).
    pub aggregation: Duration,
    /// Time spent fitting the model and predicting.
    pub forecasting: Duration,
}

impl Timing {
    /// Total wall-clock time of the task.
    pub fn total(&self) -> Duration {
        self.aggregation + self.forecasting
    }
}

/// The full answer to a FORECAST task.
#[derive(Debug, Clone)]
pub struct ForecastResult {
    /// Estimated per-timestamp aggregates used as training data.
    pub estimates: Vec<SeriesPoint>,
    /// Forecasts for the `FORE_PERIOD` future timestamps.
    pub forecasts: Vec<ForecastOut>,
    /// Fitted model name (e.g. `auto_arima[1,0,1]`).
    pub model: String,
    /// Sampler label used for estimation (`"full scan"` at rate 1).
    pub sampler: String,
    /// Sampling rate actually used.
    pub rate_used: f64,
    /// Confidence level of the intervals.
    pub confidence: f64,
    /// Innovation variance of the fitted model (σ̂²).
    pub sigma2: f64,
    /// Mean per-timestamp estimator variance (σ̂_ε², §3's noise term);
    /// 0 for exact scans.
    pub mean_noise_variance: f64,
    /// Timing breakdown.
    pub timing: Timing,
}

impl ForecastResult {
    /// Training series values in time order.
    pub fn estimate_values(&self) -> Vec<f64> {
        self.estimates.iter().map(|p| p.value).collect()
    }

    /// Forecast point values in time order.
    pub fn forecast_values(&self) -> Vec<f64> {
        self.forecasts.iter().map(|p| p.value).collect()
    }

    /// Mean forecast-interval width (Fig. 12(a)'s quantity).
    pub fn mean_interval_width(&self) -> f64 {
        if self.forecasts.is_empty() {
            return 0.0;
        }
        self.forecasts.iter().map(|p| p.hi - p.lo).sum::<f64>() / self.forecasts.len() as f64
    }

    /// Share of one-step forecast variance attributable to sampling noise.
    pub fn noise_share(&self) -> f64 {
        flashp_forecast::noise::noise_share(self.sigma2, self.mean_noise_variance)
    }
}

/// One SELECT result row: timestamp, aggregate value, and — for
/// approximate answers — the Horvitz-Thompson standard error of the
/// estimate (`None` for exact scans and for AVG, whose ratio estimator
/// has no unbiased plug-in variance).
pub type SelectRow = (Timestamp, f64, Option<f64>);

/// Result of a SELECT statement: one row per timestamp (a single row for
/// scalar aggregates).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectResult {
    /// The result rows, in time order.
    pub rows: Vec<SelectRow>,
    /// Whether the answer came from samples (approximate) or a full scan.
    pub approximate: bool,
}

/// Output of [`crate::engine::FlashPEngine::execute`].
#[derive(Debug, Clone)]
pub enum ExecOutput {
    /// A FORECAST task's answer.
    Forecast(Box<ForecastResult>),
    /// A SELECT query's answer.
    Select(SelectResult),
    /// `EXPLAIN <statement>`: the rendered plan, nothing executed.
    Plan(crate::explain::PlanNode),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> ForecastResult {
        ForecastResult {
            estimates: vec![SeriesPoint { t: Timestamp(0), value: 10.0, variance: Some(4.0) }],
            forecasts: vec![
                ForecastOut { t: Timestamp(1), value: 10.0, lo: 8.0, hi: 12.0, std_err: 1.2 },
                ForecastOut { t: Timestamp(2), value: 11.0, lo: 8.0, hi: 14.0, std_err: 1.8 },
            ],
            model: "test".to_string(),
            sampler: "uniform".to_string(),
            rate_used: 0.01,
            confidence: 0.9,
            sigma2: 3.0,
            mean_noise_variance: 1.0,
            timing: Timing {
                aggregation: Duration::from_millis(10),
                forecasting: Duration::from_millis(5),
            },
        }
    }

    #[test]
    fn accessors() {
        let r = result();
        assert_eq!(r.estimate_values(), vec![10.0]);
        assert_eq!(r.forecast_values(), vec![10.0, 11.0]);
        assert_eq!(r.mean_interval_width(), 5.0);
        assert_eq!(r.timing.total(), Duration::from_millis(15));
        assert!((r.noise_share() - 0.25).abs() < 1e-12);
    }
}
