//! `EXPLAIN` rendering: a [`LogicalPlan`] as a structured [`PlanNode`]
//! tree — sampler, layer rate, estimated rows scanned, and the predicate
//! after constant folding — without executing anything.

use crate::planner::{
    ForecastPlan, LogicalPlan, PredicateSlot, ScanSource, SelectPlan, SourceSlot, TimeRangeSlot,
};
use flashp_storage::{CompiledPredicate, Schema, SumMode};
use std::fmt;

/// One node of an `EXPLAIN` tree: an operator name, key/value properties,
/// and child operators.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Operator name (e.g. `Forecast`, `SampleEstimate`, `FullScan`).
    pub name: String,
    /// Properties in display order.
    pub props: Vec<(String, String)>,
    /// Child operators.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn new(name: &str) -> Self {
        PlanNode { name: name.to_string(), props: Vec::new(), children: Vec::new() }
    }

    fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.props.push((key.to_string(), value.to_string()));
        self
    }

    fn child(mut self, child: PlanNode) -> Self {
        self.children.push(child);
        self
    }

    /// Look up a property by key, searching this node only.
    pub fn prop(&self, key: &str) -> Option<&str> {
        self.props.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Look up a property by key anywhere in the tree (pre-order).
    pub fn find_prop(&self, key: &str) -> Option<&str> {
        self.prop(key).or_else(|| self.children.iter().find_map(|c| c.find_prop(key)))
    }

    /// The first node (pre-order) with the given operator name.
    pub fn find(&self, name: &str) -> Option<&PlanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let indent = "  ".repeat(depth);
        write!(f, "{indent}{}", self.name)?;
        if !self.props.is_empty() {
            let props: Vec<String> = self.props.iter().map(|(k, v)| format!("{k}={v}")).collect();
            write!(f, " [{}]", props.join(", "))?;
        }
        writeln!(f)?;
        for child in &self.children {
            child.render(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// Render a plan as an `EXPLAIN` tree. The `schema` maps dimension
/// indices in the compiled predicate back to column names;
/// `partial_cache` reports whether the engine's day-partial cache is
/// active (rendered as `partial_cache=on|off` on the scan source — an
/// engine property, like the kernel tier, rather than a plan one).
pub fn explain_plan(plan: &LogicalPlan, schema: &Schema, partial_cache: bool) -> PlanNode {
    match plan {
        LogicalPlan::Forecast(p) => explain_forecast(p, schema, partial_cache),
        LogicalPlan::Select(p) => explain_select(p, schema, partial_cache),
    }
}

fn explain_forecast(p: &ForecastPlan, schema: &Schema, partial_cache: bool) -> PlanNode {
    let mut series =
        PlanNode::new("EstimateSeries").with("agg", format!("{}({})", p.agg, p.measure_name));
    series = match &p.range {
        TimeRangeSlot::Static(Some((s, e))) => {
            series.with("range", format!("{s}..{e}")).with("points", (*e - *s + 1).max(0))
        }
        TimeRangeSlot::Static(None) => series.with("range", "empty").with("points", 0),
        TimeRangeSlot::Dynamic(w) => {
            series.with("range", "dynamic").with("window", w).with("points", "dynamic")
        }
    };
    PlanNode::new("Forecast")
        .with("model", &p.model)
        .with("horizon", p.horizon)
        .with("confidence", p.confidence)
        .with("noise_aware", p.noise_aware)
        .child(
            series
                .child(source_slot_node(&p.source, sum_mode(p.fast_sum), partial_cache))
                .child(predicate_node(&p.predicate, schema)),
        )
}

/// The plan's float-sum mode for exact full-scan paths.
fn sum_mode(fast_sum: bool) -> SumMode {
    if fast_sum {
        SumMode::Fast
    } else {
        SumMode::Exact
    }
}

fn explain_select(p: &SelectPlan, schema: &Schema, partial_cache: bool) -> PlanNode {
    let mut node = PlanNode::new("Select")
        .with("agg", format!("{}({})", p.agg, p.measure_name))
        .with("group_by_time", p.group_by_time);
    node = match &p.range {
        TimeRangeSlot::Static(Some((lo, hi))) => node.with("range", format!("{lo}..{hi}")),
        TimeRangeSlot::Static(None) => node.with("range", "empty"),
        TimeRangeSlot::Dynamic(w) => node.with("range", "dynamic").with("window", w),
    };
    node.child(source_slot_node(&p.source, sum_mode(p.fast_sum), partial_cache))
        .child(predicate_node(&p.predicate, schema))
}

fn source_slot_node(slot: &SourceSlot, sum: SumMode, partial_cache: bool) -> PlanNode {
    match slot {
        SourceSlot::Planned(source) => source_node(source, sum, partial_cache),
        // A parameterized range can't pick its serving layer until the
        // parameters bind; `PreparedQuery::explain_with` renders the
        // concrete choice for one binding.
        SourceSlot::Deferred => PlanNode::new("BindTimeSource")
            .with("selection", "deferred")
            .with("reason", "layer and est_rows are re-selected when the range parameters bind"),
    }
}

fn source_node(source: &ScanSource, sum: SumMode, partial_cache: bool) -> PlanNode {
    // The scan-kernel tier is process-global (dispatched once at startup,
    // see `flashp_storage::simd`), so it is reported on the scan source
    // rather than stored in the plan: whatever tier is active is exactly
    // what the executor's predicate and aggregation kernels will run.
    // `partial_cache` is likewise an engine property.
    let simd = flashp_storage::simd::active_tier();
    let cache = if partial_cache { "on" } else { "off" };
    match source {
        // `sum` is a property of the exact scan only: sampled estimation
        // keeps its own accumulation order regardless of FAST_SUM.
        ScanSource::FullScan { est_rows } => PlanNode::new("FullScan")
            .with("sampler", "full scan")
            .with("est_rows", est_rows)
            .with("simd", simd)
            .with("sum", sum.name())
            .with("partial_cache", cache),
        ScanSource::SampleLayer {
            layer,
            rate,
            sampler,
            bucket,
            est_rows,
            rationale,
            catalog_version,
        } => PlanNode::new("SampleEstimate")
            .with("sampler", sampler)
            .with("layer", layer)
            .with("rate", rate)
            .with("bucket", bucket)
            .with("est_rows", est_rows)
            .with("catalog_version", catalog_version)
            .with("simd", simd)
            .with("partial_cache", cache)
            .with("rationale", rationale),
    }
}

fn predicate_node(slot: &PredicateSlot, schema: &Schema) -> PlanNode {
    match slot {
        PredicateSlot::Compiled(pred) => PlanNode::new("Predicate")
            .with("folded", render_predicate(pred, schema))
            .with("params", 0),
        PredicateSlot::Template { constraint, num_params } => {
            PlanNode::new("Predicate").with("template", constraint).with("params", num_params)
        }
    }
}

/// Render a compiled (constant-folded) predicate with dimension indices
/// resolved back to column names. Categorical literals render as their
/// dictionary codes — folding has already replaced the strings.
pub fn render_predicate(pred: &CompiledPredicate, schema: &Schema) -> String {
    fn dim_name(schema: &Schema, dim: usize) -> String {
        schema.dimensions().get(dim).map(|d| d.name.clone()).unwrap_or_else(|| format!("dim{dim}"))
    }
    match pred {
        CompiledPredicate::Const(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        CompiledPredicate::Cmp { dim, op, value } => {
            format!("{} {} {}", dim_name(schema, *dim), op.symbol(), value)
        }
        // `{:?}` keeps the decimal point (`3.0`, not `3`) so float
        // comparisons are distinguishable from integer ones.
        CompiledPredicate::CmpF64 { dim, op, value } => {
            format!("{} {} {:?}", dim_name(schema, *dim), op.symbol(), value)
        }
        CompiledPredicate::InSet { dim, values, .. } => {
            let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            format!("{} IN ({})", dim_name(schema, *dim), vals.join(", "))
        }
        CompiledPredicate::And(children) => children
            .iter()
            .map(|c| format!("({})", render_predicate(c, schema)))
            .collect::<Vec<_>>()
            .join(" AND "),
        CompiledPredicate::Or(children) => children
            .iter()
            .map(|c| format!("({})", render_predicate(c, schema)))
            .collect::<Vec<_>>()
            .join(" OR "),
        CompiledPredicate::Not(child) => format!("NOT ({})", render_predicate(child, schema)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::SampleCatalog;
    use crate::config::{EngineConfig, SamplerChoice};
    use crate::planner::Planner;
    use crate::test_support::test_table;
    use flashp_query::parse;

    fn explain(sql: &str) -> PlanNode {
        let table = test_table();
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::OptimalGsw,
            default_rate: 0.05,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&table, &config).unwrap();
        let planner = Planner::new(&table, &config, Some(&catalog));
        let plan = planner.plan(&parse(sql).unwrap()).unwrap();
        explain_plan(&plan, table.schema(), true)
    }

    #[test]
    fn forecast_tree_names_sampler_rate_and_rows() {
        let node = explain(
            "FORECAST SUM(m1) FROM T WHERE seg <= 5 USING (20200101, 20200202) \
             OPTION (MODEL = 'ar(7)')",
        );
        assert_eq!(node.name, "Forecast");
        assert_eq!(node.prop("model"), Some("ar(7)"));
        let est = node.find("SampleEstimate").expect("sampled source");
        assert_eq!(est.prop("sampler"), Some("Optimal GSW"));
        assert_eq!(est.prop("rate"), Some("0.05"));
        assert!(est.prop("est_rows").unwrap().parse::<usize>().unwrap() > 0);
        assert_eq!(est.prop("partial_cache"), Some("on"));
        // The active scan-kernel tier is named on the source.
        let simd = est.prop("simd").expect("scan source names its kernel tier");
        assert!(["avx512", "avx2", "sse2", "portable"].contains(&simd), "unknown tier {simd}");
        assert_eq!(simd, flashp_storage::simd::active_tier().name());
        // Constant-folded predicate with names resolved.
        let pred = node.find("Predicate").unwrap();
        assert_eq!(pred.prop("folded"), Some("seg <= 5"));
        // Rendered tree is indented and contains every operator.
        let text = node.to_string();
        assert!(text.contains("Forecast"));
        assert!(text.contains("  EstimateSeries"));
        assert!(text.contains("    SampleEstimate"));
    }

    #[test]
    fn constant_folding_is_visible() {
        // An impossible IN list on a categorical column folds to FALSE.
        let node = explain("SELECT SUM(m1) FROM T WHERE grp IN ('nope') AND t = 20200101");
        let pred = node.find("Predicate").unwrap();
        assert_eq!(pred.prop("folded"), Some("FALSE"));
    }

    #[test]
    fn template_predicates_render_placeholders() {
        let node = explain("SELECT SUM(m1) FROM T WHERE seg <= ? GROUP BY t");
        let pred = node.find("Predicate").unwrap();
        assert_eq!(pred.prop("params"), Some("1"));
        assert_eq!(pred.prop("template"), Some("seg <= ?"));
    }

    #[test]
    fn full_scan_sources_render() {
        let node = explain("SELECT COUNT(*) FROM T WHERE t = 20200101");
        let scan = node.find("FullScan").unwrap();
        assert_eq!(scan.prop("sampler"), Some("full scan"));
        assert_eq!(scan.prop("est_rows"), Some("400"));
        assert_eq!(scan.prop("simd"), Some(flashp_storage::simd::active_tier().name()));
        assert_eq!(scan.prop("sum"), Some("exact"));
        assert_eq!(scan.prop("partial_cache"), Some("on"));
    }

    #[test]
    fn fast_sum_option_is_reported_on_the_exact_scan() {
        let node = explain("SELECT SUM(m1) FROM T WHERE t = 20200101 OPTION (FAST_SUM = 1)");
        assert_eq!(node.find("FullScan").unwrap().prop("sum"), Some("fast"));
        // Sampled sources never report a sum mode — estimation keeps its
        // own accumulation order.
        let sampled = explain(
            "FORECAST SUM(m1) FROM T WHERE seg <= 5 USING (20200101, 20200202) \
             OPTION (FAST_SUM = 1)",
        );
        assert_eq!(sampled.find("SampleEstimate").unwrap().prop("sum"), None);
    }
}
