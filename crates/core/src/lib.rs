//! # flashp-core
//!
//! The FlashP pipeline (§2.1 and §5 of the paper): an engine that owns a
//! time-series relation, runs the **offline sample preprocessor**
//! (multi-layer GSW/uniform/priority/threshold samples per partition) and
//! serves **online forecasting tasks**:
//!
//! 1. a `FORECAST` statement is rewritten into the per-timestamp
//!    aggregation queries of Eq. (4);
//! 2. each is estimated from the chosen sample layer (or answered exactly
//!    at `SAMPLE_RATE = 1.0`);
//! 3. the estimates train the requested forecasting model (ARIMA, LSTM,
//!    ETS, …) which predicts `FORE_PERIOD` future points with confidence
//!    intervals.
//!
//! The result carries the aggregation/forecasting wall-clock split
//! (Fig. 7), per-timestamp estimator variances (the σ_ε² of §3) and an
//! optional noise-aware interval widening per Proposition 1.
//!
//! ## The staged query pipeline
//!
//! Statements move through four explicit stages:
//!
//! 1. **parse** — [`flashp_query::parse`] produces a [`Statement`] AST;
//! 2. **plan** — a [`planner::Planner`] resolves names and options,
//!    constant-folds the predicate and picks the serving sample layer,
//!    yielding a typed [`planner::LogicalPlan`];
//! 3. **prepare** — [`FlashPEngine::prepare`] packages the plan into a
//!    `Send + Sync` [`PreparedQuery`] executable repeatedly via `&self`,
//!    with `?` placeholders bound per call;
//! 4. **execute** — runs the plan; `EXPLAIN <stmt>` instead renders it as
//!    a [`explain::PlanNode`] tree.
//!
//! The offline stage lives in [`catalog`]: [`SampleCatalog::build`] draws
//! every layer × bucket × partition sample without borrowing an engine,
//! and the resulting catalog is immutable and freely shareable.
//!
//! ## Live ingest and versioned catalogs
//!
//! Tables and catalogs are *versioned* ([`version`]): the engine serves
//! queries from an immutable [`CatalogVersion`] snapshot behind an
//! atomically swappable `Arc`. [`FlashPEngine::ingest`] stages new rows
//! invisibly; [`FlashPEngine::publish`] derives the next catalog version
//! incrementally — only changed (layer, bucket, partition) cells are
//! recomputed, and grown GSW cells are absorbed via the §4.1 key rule —
//! then swaps it in without blocking in-flight executions. See
//! `ARCHITECTURE.md` at the repository root for the full lifecycle.

#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod engine;
pub mod error;
pub mod explain;
pub mod models;
pub mod partial_cache;
pub mod planner;
pub mod prepared;
pub mod result;
pub mod sharded;
pub mod version;

pub use catalog::{BuildStats, DeltaStats, LayerStats, SampleCatalog};
pub use config::{EngineConfig, GroupingPolicy, SamplerChoice};
pub use engine::{EngineStats, FlashPEngine, PlanCacheStats};
pub use error::EngineError;
pub use explain::PlanNode;
pub use models::build_model;
pub use partial_cache::{PartialCache, PartialCacheStats};
pub use planner::{LogicalPlan, Planner, ScanSource, SourceSlot, TimeRangeSlot};
pub use prepared::PreparedQuery;
pub use result::{
    ExecOutput, ForecastOut, ForecastResult, SelectResult, SelectRow, SeriesPoint, Timing,
};
pub use sharded::{
    route_hash, DayPartial, ShardConfig, ShardResponse, ShardSnapshot, ShardStats, ShardedEngine,
    ShardedPrepared, ShardedStats,
};
pub use version::{CatalogDelta, CatalogVersion, IngestBatch, PublishStats};

// Re-exported so engine users can parse statements and bind parameters
// without depending on flashp-query directly.
pub use flashp_query::{parse, Literal, Statement};

#[cfg(test)]
pub(crate) mod test_support {
    use flashp_storage::{DataType, Schema, TimeSeriesTable, Timestamp, Value};

    /// Small deterministic table: 40 days, 400 rows/day, one heavy-tailed
    /// measure plus a proportional one.
    pub(crate) fn test_table() -> TimeSeriesTable {
        let schema = Schema::from_names(
            &[("seg", DataType::Int64), ("grp", DataType::Categorical)],
            &["m1", "m2"],
        )
        .unwrap()
        .into_shared();
        let mut table = TimeSeriesTable::new(schema);
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        let mut state = 777u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for day in 0..40i64 {
            let level = 100.0 + day as f64 + 10.0 * ((day % 7) as f64);
            for row in 0..400i64 {
                let heavy = if row % 97 == 0 { 50.0 } else { 1.0 };
                let m1 = level * heavy * (0.5 + next());
                table
                    .append_row(
                        start + day,
                        &[Value::Int(row % 10), Value::from(if row % 2 == 0 { "a" } else { "b" })],
                        &[m1, m1 * 0.1],
                    )
                    .unwrap();
            }
        }
        table
    }
}
