//! # flashp-core
//!
//! The FlashP pipeline (§2.1 and §5 of the paper): an engine that owns a
//! time-series relation, runs the **offline sample preprocessor**
//! (multi-layer GSW/uniform/priority/threshold samples per partition) and
//! serves **online forecasting tasks**:
//!
//! 1. a `FORECAST` statement is rewritten into the per-timestamp
//!    aggregation queries of Eq. (4);
//! 2. each is estimated from the chosen sample layer (or answered exactly
//!    at `SAMPLE_RATE = 1.0`);
//! 3. the estimates train the requested forecasting model (ARIMA, LSTM,
//!    ETS, …) which predicts `FORE_PERIOD` future points with confidence
//!    intervals.
//!
//! The result carries the aggregation/forecasting wall-clock split
//! (Fig. 7), per-timestamp estimator variances (the σ_ε² of §3) and an
//! optional noise-aware interval widening per Proposition 1.

pub mod config;
pub mod engine;
pub mod error;
pub mod models;
pub mod result;

pub use config::{EngineConfig, GroupingPolicy, SamplerChoice};
pub use engine::{BuildStats, FlashPEngine};
pub use error::EngineError;
pub use models::build_model;
pub use result::{ExecOutput, ForecastOut, ForecastResult, SelectResult, SeriesPoint, Timing};
