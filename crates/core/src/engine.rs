//! The FlashP engine: offline sample preprocessing + online forecasting.
//!
//! Mirrors the deployment of §5: an *Offline Sample Preprocessor* draws
//! multi-layer samples per partition (one sample set per measure for
//! measure-dependent samplers, one per measure group for compressed GSW,
//! one shared set for uniform), and an *Online Forecasting Service*
//! rewrites a FORECAST task into per-timestamp aggregation queries
//! (Eq. 4), estimates them from the chosen sample layer, fits the
//! requested model and returns forecasts with intervals — reporting the
//! aggregation/forecasting time split of Fig. 7.

use crate::config::{EngineConfig, GroupingPolicy, SamplerChoice};
use crate::error::EngineError;
use crate::models::build_model;
use crate::result::{ExecOutput, ForecastOut, ForecastResult, SelectResult, SeriesPoint, Timing};
use flashp_query::{bind_expr, bind_select_constraint, parse, ForecastStmt, SelectStmt, Statement};
use flashp_sampling::{
    estimate_agg_with, group_measures, GswSampler, PrioritySampler, Sample, SampleSize, Sampler,
    ThresholdSampler, UniformSampler,
};
use flashp_storage::parallel::{parallel_map, parallel_map_with};
use flashp_storage::{
    AggFunc, CompiledPredicate, MaskScratch, ScanOptions, Timestamp, TimeSeriesTable,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// One layer of the sample catalog.
struct CatalogLayer {
    rate: f64,
    /// Sample sets; indexing via `measure_bucket`.
    buckets: Vec<BTreeMap<Timestamp, Sample>>,
    /// Bucket index serving each measure.
    measure_bucket: Vec<usize>,
    /// Human-readable sampler label.
    sampler_label: String,
    /// Total sampled rows across buckets (drives the threading decision
    /// at query time: tiny layers are cheaper to scan sequentially).
    total_rows: usize,
}

/// Statistics returned by [`FlashPEngine::build_samples`].
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// Wall-clock build time.
    pub duration: std::time::Duration,
    /// Total bytes across all layers and buckets.
    pub total_bytes: usize,
    /// Per layer: (rate, total sampled rows, bytes).
    pub layers: Vec<(f64, usize, usize)>,
    /// Resolved measure groups (empty unless a compressed sampler).
    pub groups: Vec<Vec<usize>>,
}

/// The FlashP engine.
pub struct FlashPEngine {
    table: Arc<TimeSeriesTable>,
    config: EngineConfig,
    layers: Vec<CatalogLayer>,
    groups: Vec<Vec<usize>>,
}

impl FlashPEngine {
    /// Wrap a table with the given configuration. The table is shared via
    /// [`Arc`], so several engines (e.g. one per sampler in an experiment)
    /// can serve the same data without copying it. Call
    /// [`FlashPEngine::build_samples`] before issuing sampled queries;
    /// exact (rate = 1) queries work immediately.
    pub fn new(table: impl Into<Arc<TimeSeriesTable>>, config: EngineConfig) -> Self {
        FlashPEngine { table: table.into(), config, layers: Vec::new(), groups: Vec::new() }
    }

    /// The underlying table.
    pub fn table(&self) -> &TimeSeriesTable {
        &self.table
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Resolved measure groups (populated by `build_samples` when a
    /// compressed sampler is configured).
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Run the offline sample preprocessor: draw every layer × bucket ×
    /// partition sample. Deterministic given `config.seed`.
    pub fn build_samples(&mut self) -> Result<BuildStats, EngineError> {
        self.config.validate().map_err(EngineError::Config)?;
        let start_time = Instant::now();
        let num_measures = self.table.schema().num_measures();
        if num_measures == 0 {
            return Err(EngineError::Config("table has no measures".to_string()));
        }

        // Resolve buckets.
        let (bucket_defs, measure_bucket, groups) = self.resolve_buckets(num_measures)?;
        self.groups = groups.clone();

        let schema = self.table.schema().clone();
        let mut layers = Vec::with_capacity(self.config.layer_rates.len());
        let mut stats_layers = Vec::new();
        let mut total_bytes = 0usize;
        for (layer_idx, &rate) in self.config.layer_rates.iter().enumerate() {
            let mut buckets = Vec::with_capacity(bucket_defs.len());
            let mut layer_rows = 0usize;
            let mut layer_bytes = 0usize;
            let mut label = String::new();
            for (bucket_idx, def) in bucket_defs.iter().enumerate() {
                let sampler = make_sampler(&self.config.sampler, def, rate);
                label = self.config.sampler.label().to_string();
                let parts: Vec<(Timestamp, &flashp_storage::Partition)> =
                    self.table.partitions().collect();
                let seed_base = mix(self.config.seed, layer_idx as u64, bucket_idx as u64);
                let samples: Vec<Result<Sample, flashp_sampling::SamplingError>> =
                    parallel_map(&parts, self.config.threads, |(t, p)| {
                        let mut rng = StdRng::seed_from_u64(mix(seed_base, t.0 as u64, 0x5A));
                        sampler.sample(&schema, p, &mut rng)
                    });
                let mut map = BTreeMap::new();
                for ((t, _), s) in parts.iter().zip(samples) {
                    let s = s?;
                    layer_rows += s.num_rows();
                    layer_bytes += s.byte_size();
                    map.insert(*t, s);
                }
                buckets.push(map);
            }
            total_bytes += layer_bytes;
            stats_layers.push((rate, layer_rows, layer_bytes));
            layers.push(CatalogLayer {
                rate,
                buckets,
                measure_bucket: measure_bucket.clone(),
                sampler_label: label,
                total_rows: layer_rows,
            });
        }
        // Keep layers sorted by rate descending for selection.
        layers.sort_by(|a, b| b.rate.total_cmp(&a.rate));
        self.layers = layers;
        Ok(BuildStats {
            duration: start_time.elapsed(),
            total_bytes,
            layers: stats_layers,
            groups,
        })
    }

    /// Resolve bucket definitions: which measures each sample set serves.
    #[allow(clippy::type_complexity)]
    fn resolve_buckets(
        &self,
        num_measures: usize,
    ) -> Result<(Vec<Vec<usize>>, Vec<usize>, Vec<Vec<usize>>), EngineError> {
        if self.config.sampler.per_measure() {
            let defs: Vec<Vec<usize>> = (0..num_measures).map(|j| vec![j]).collect();
            let mapping: Vec<usize> = (0..num_measures).collect();
            return Ok((defs, mapping, Vec::new()));
        }
        if !self.config.sampler.grouped() {
            // Uniform: one shared bucket.
            return Ok((vec![(0..num_measures).collect()], vec![0; num_measures], Vec::new()));
        }
        // Compressed samplers: need groups.
        let groups: Vec<Vec<usize>> = match &self.config.grouping {
            GroupingPolicy::Single => vec![(0..num_measures).collect()],
            GroupingPolicy::Explicit(groups) => {
                let mut seen = vec![false; num_measures];
                for g in groups {
                    for &j in g {
                        if j >= num_measures || seen[j] {
                            return Err(EngineError::Config(format!(
                                "invalid or duplicate measure {j} in explicit groups"
                            )));
                        }
                        seen[j] = true;
                    }
                }
                if seen.iter().any(|s| !s) {
                    return Err(EngineError::Config(
                        "explicit groups must cover every measure".to_string(),
                    ));
                }
                groups.clone()
            }
            GroupingPolicy::Auto { num_groups } => {
                // Group on a middle partition (representative day).
                let (lo, hi) = self
                    .table
                    .time_bounds()
                    .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
                let mid = Timestamp(lo.0 + (hi.0 - lo.0) / 2);
                let partition = self
                    .table
                    .partition(mid)
                    .or_else(|| self.table.partitions().next().map(|(_, p)| p))
                    .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
                let all: Vec<usize> = (0..num_measures).collect();
                let mut rng = StdRng::seed_from_u64(mix(self.config.seed, 0xC1, 0xC2));
                let result = group_measures(partition, &all, *num_groups, 20_000, &mut rng)?;
                result.groups
            }
        };
        let mut mapping = vec![usize::MAX; num_measures];
        for (b, g) in groups.iter().enumerate() {
            for &j in g {
                mapping[j] = b;
            }
        }
        Ok((groups.clone(), mapping, groups))
    }

    /// Execute any statement.
    pub fn execute(&self, sql: &str) -> Result<ExecOutput, EngineError> {
        match parse(sql)? {
            Statement::Forecast(stmt) => {
                Ok(ExecOutput::Forecast(Box::new(self.run_forecast(&stmt)?)))
            }
            Statement::Select(stmt) => Ok(ExecOutput::Select(self.run_select(&stmt)?)),
        }
    }

    /// Execute a FORECAST statement (errors on SELECT).
    pub fn forecast(&self, sql: &str) -> Result<ForecastResult, EngineError> {
        match parse(sql)? {
            Statement::Forecast(stmt) => self.run_forecast(&stmt),
            Statement::Select(_) => Err(EngineError::WrongStatement { expected: "FORECAST" }),
        }
    }

    /// Execute a SELECT statement (errors on FORECAST).
    pub fn select(&self, sql: &str) -> Result<SelectResult, EngineError> {
        match parse(sql)? {
            Statement::Select(stmt) => self.run_select(&stmt),
            Statement::Forecast(_) => Err(EngineError::WrongStatement { expected: "SELECT" }),
        }
    }

    fn check_table(&self, name: &str) -> Result<(), EngineError> {
        if let Some(expected) = &self.config.table_name {
            if !expected.eq_ignore_ascii_case(name) {
                return Err(EngineError::Config(format!(
                    "unknown table '{name}' (registered: '{expected}')"
                )));
            }
        }
        Ok(())
    }

    fn resolve_measure(&self, name: &str, agg: AggFunc) -> Result<usize, EngineError> {
        if name == "*" {
            if agg != AggFunc::Count {
                return Err(EngineError::Config("'*' is only valid in COUNT(*)".to_string()));
            }
            // COUNT(*) needs no measure values; use column 0 for masking.
            return Ok(0);
        }
        Ok(self.table.schema().measure_index(name)?)
    }

    /// Run a forecasting task (the full two-phase pipeline of §2.1).
    pub fn run_forecast(&self, stmt: &ForecastStmt) -> Result<ForecastResult, EngineError> {
        self.check_table(&stmt.table)?;
        let measure = self.resolve_measure(&stmt.measure, stmt.agg)?;
        let predicate = bind_expr(&stmt.constraint)?;
        let compiled = self.table.compile_predicate(&predicate)?;
        let t_start = Timestamp::from_yyyymmdd(stmt.t_start)?;
        let t_end = Timestamp::from_yyyymmdd(stmt.t_end)?;
        if t_end < t_start {
            return Err(EngineError::Config(format!(
                "USING range is reversed: {} > {}",
                stmt.t_start, stmt.t_end
            )));
        }

        // Options.
        let rate = match stmt.option("SAMPLE_RATE") {
            Some(v) => v.as_float().ok_or_else(|| {
                EngineError::Config("SAMPLE_RATE must be numeric".to_string())
            })?,
            None => self.config.default_rate,
        };
        if !(rate > 0.0 && rate <= 1.0) {
            return Err(EngineError::Config(format!("SAMPLE_RATE {rate} outside (0, 1]")));
        }
        let model_name = match stmt.option("MODEL") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| EngineError::Config("MODEL must be a string".to_string()))?
                .to_string(),
            None => self.config.default_model.clone(),
        };
        let horizon = match stmt.option("FORE_PERIOD") {
            Some(v) => v.as_int().ok_or_else(|| {
                EngineError::Config("FORE_PERIOD must be an integer".to_string())
            })? as usize,
            None => self.config.default_horizon,
        };
        let confidence = match stmt.option("CONFIDENCE") {
            Some(v) => v.as_float().ok_or_else(|| {
                EngineError::Config("CONFIDENCE must be numeric".to_string())
            })?,
            None => self.config.default_confidence,
        };
        let noise_aware = stmt
            .option("NOISE_AWARE")
            .and_then(|v| v.as_int())
            .map(|v| v != 0)
            .unwrap_or(false);

        // Phase 1: estimate the training series (Eq. 4).
        let agg_start = Instant::now();
        let (estimates, sampler_label, rate_used) =
            self.estimate_series(measure, &compiled, stmt.agg, t_start, t_end, rate)?;
        let aggregation = agg_start.elapsed();

        // Phase 2: fit + forecast.
        let fit_start = Instant::now();
        let values: Vec<f64> = estimates.iter().map(|p| p.value).collect();
        let mut model = build_model(&model_name)?;
        let summary = model.fit(&values)?;
        let mut fc = model.forecast(horizon, confidence)?;
        let mean_noise_variance = {
            let vars: Vec<f64> = estimates.iter().filter_map(|p| p.variance).collect();
            if vars.is_empty() {
                0.0
            } else {
                vars.iter().sum::<f64>() / vars.len() as f64
            }
        };
        if noise_aware && mean_noise_variance > 0.0 {
            fc = flashp_forecast::noise::widen_with_noise(&fc, mean_noise_variance)?;
        }
        let forecasting = fit_start.elapsed();

        let forecasts: Vec<ForecastOut> = fc
            .points
            .iter()
            .map(|p| ForecastOut {
                t: t_end + p.step as i64,
                value: p.value,
                lo: p.lo,
                hi: p.hi,
                std_err: p.std_err,
            })
            .collect();
        Ok(ForecastResult {
            estimates,
            forecasts,
            model: model.name(),
            sampler: sampler_label,
            rate_used,
            confidence,
            sigma2: summary.sigma2,
            mean_noise_variance,
            timing: Timing { aggregation, forecasting },
        })
    }

    /// Estimate the per-timestamp aggregates over `[start, end]`. Rate 1
    /// runs the exact parallel scan; otherwise the cheapest adequate
    /// sample layer answers.
    pub fn estimate_series(
        &self,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        rate: f64,
    ) -> Result<(Vec<SeriesPoint>, String, f64), EngineError> {
        let expected_points = (end - start + 1) as usize;
        if rate >= 1.0 {
            let rows = flashp_storage::aggregate_range(
                &self.table,
                measure,
                pred,
                agg,
                start,
                end,
                ScanOptions { threads: self.config.threads },
            )?;
            if rows.len() != expected_points {
                return Err(EngineError::SamplesUnavailable(format!(
                    "table covers {} of {} requested timestamps",
                    rows.len(),
                    expected_points
                )));
            }
            let points =
                rows.into_iter().map(|(t, value)| SeriesPoint { t, value, variance: None }).collect();
            return Ok((points, "full scan".to_string(), 1.0));
        }

        let layer = self
            .layers
            .iter()
            .rfind(|l| l.rate >= rate)
            .or_else(|| self.layers.first())
            .ok_or_else(|| {
                EngineError::SamplesUnavailable(
                    "no sample layers built; call build_samples()".to_string(),
                )
            })?;
        let bucket = &layer.buckets[layer.measure_bucket[measure]];
        let ts: Vec<Timestamp> = start.range_inclusive(end).collect();
        // Thread spawn costs dwarf the estimation work on small layers.
        let threads = if layer.total_rows < 200_000 { 1 } else { self.config.threads };
        // One scratch per worker: the whole Eq. 4 batch shares mask buffers.
        let estimates: Vec<Result<SeriesPoint, EngineError>> =
            parallel_map_with(&ts, threads, MaskScratch::new, |scratch, &t| {
                let sample = bucket.get(&t).ok_or_else(|| {
                    EngineError::SamplesUnavailable(format!("no sample for timestamp {t}"))
                })?;
                let e = estimate_agg_with(sample, measure, pred, agg, scratch)?;
                Ok(SeriesPoint { t, value: e.value, variance: e.variance })
            });
        let mut points = Vec::with_capacity(estimates.len());
        for e in estimates {
            points.push(e?);
        }
        Ok((points, layer.sampler_label.clone(), layer.rate))
    }

    /// Run a SELECT (exact, over the base table).
    pub fn run_select(&self, stmt: &SelectStmt) -> Result<SelectResult, EngineError> {
        self.check_table(&stmt.table)?;
        let measure = self.resolve_measure(&stmt.measure, stmt.agg)?;
        let bound = bind_select_constraint(stmt)?;
        let compiled = self.table.compile_predicate(&bound.predicate)?;
        let (table_lo, table_hi) = self
            .table
            .time_bounds()
            .ok_or_else(|| EngineError::Config("empty table".to_string()))?;
        let (lo, hi) = match bound.time_range {
            Some((a, b)) => (a.max(table_lo), b.min(table_hi)),
            None => (table_lo, table_hi),
        };
        if hi < lo {
            return Ok(SelectResult { rows: Vec::new(), approximate: false });
        }
        if stmt.group_by_time {
            let rows = flashp_storage::aggregate_range(
                &self.table,
                measure,
                &compiled,
                stmt.agg,
                lo,
                hi,
                ScanOptions { threads: self.config.threads },
            )?;
            return Ok(SelectResult { rows, approximate: false });
        }
        // Scalar aggregate across the range, through the same fused /
        // scratch-reusing kernels as the grouped path.
        let total = flashp_storage::aggregate_total(
            &self.table,
            measure,
            &compiled,
            lo,
            hi,
            ScanOptions { threads: self.config.threads },
        )?;
        Ok(SelectResult { rows: vec![(lo, total.finalize(stmt.agg))], approximate: false })
    }
}

/// Build the sampler instance for one bucket at one rate.
fn make_sampler(
    choice: &SamplerChoice,
    bucket_measures: &[usize],
    rate: f64,
) -> Box<dyn Sampler + Send + Sync> {
    let size = SampleSize::Rate(rate);
    match choice {
        SamplerChoice::Uniform => Box::new(UniformSampler::new(size)),
        SamplerChoice::OptimalGsw => Box::new(GswSampler::optimal(bucket_measures[0], size)),
        SamplerChoice::Priority => Box::new(PrioritySampler::new(bucket_measures[0], size)),
        SamplerChoice::Threshold => Box::new(ThresholdSampler::new(bucket_measures[0], size)),
        SamplerChoice::ArithmeticGsw => {
            Box::new(GswSampler::arithmetic_compressed(bucket_measures.to_vec(), size))
        }
        SamplerChoice::GeometricGsw => {
            Box::new(GswSampler::geometric_compressed(bucket_measures.to_vec(), size))
        }
    }
}

/// SplitMix-style seed mixing.
fn mix(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ c.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, Schema, Value};

    /// Small deterministic table: 40 days, 400 rows/day, one heavy-tailed
    /// measure plus a proportional one.
    fn test_table() -> TimeSeriesTable {
        let schema = Schema::from_names(
            &[("seg", DataType::Int64), ("grp", DataType::Categorical)],
            &["m1", "m2"],
        )
        .unwrap()
        .into_shared();
        let mut table = TimeSeriesTable::new(schema);
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        let mut state = 777u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for day in 0..40i64 {
            let level = 100.0 + day as f64 + 10.0 * ((day % 7) as f64);
            for row in 0..400i64 {
                let heavy = if row % 97 == 0 { 50.0 } else { 1.0 };
                let m1 = level * heavy * (0.5 + next());
                table
                    .append_row(
                        start + day,
                        &[Value::Int(row % 10), Value::from(if row % 2 == 0 { "a" } else { "b" })],
                        &[m1, m1 * 0.1],
                    )
                    .unwrap();
            }
        }
        table
    }

    fn engine(sampler: SamplerChoice) -> FlashPEngine {
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler,
            default_rate: 0.05,
            ..Default::default()
        };
        let mut e = FlashPEngine::new(test_table(), config);
        e.build_samples().unwrap();
        e
    }

    const FORECAST_SQL: &str = "FORECAST SUM(m1) FROM T WHERE seg <= 5 \
         USING (20200101, 20200202) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";

    #[test]
    fn full_rate_pipeline_end_to_end() {
        let e = engine(SamplerChoice::Uniform);
        let sql = "FORECAST SUM(m1) FROM T WHERE seg <= 5 USING (20200101, 20200202) \
                   OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5, SAMPLE_RATE = 1.0)";
        let r = e.forecast(sql).unwrap();
        assert_eq!(r.estimates.len(), 33);
        assert_eq!(r.forecasts.len(), 5);
        assert_eq!(r.rate_used, 1.0);
        assert_eq!(r.sampler, "full scan");
        assert_eq!(r.mean_noise_variance, 0.0);
        assert!(r.forecasts.iter().all(|f| f.lo <= f.value && f.value <= f.hi));
        // Forecast timestamps continue the training range.
        assert_eq!(r.forecasts[0].t.to_yyyymmdd(), 20200203);
    }

    #[test]
    fn sampled_estimates_track_exact_series() {
        for sampler in [
            SamplerChoice::Uniform,
            SamplerChoice::OptimalGsw,
            SamplerChoice::Priority,
            SamplerChoice::Threshold,
            SamplerChoice::ArithmeticGsw,
            SamplerChoice::GeometricGsw,
        ] {
            let e = engine(sampler.clone());
            let pred = e.table.compile_predicate(&flashp_storage::Predicate::cmp(
                "seg",
                flashp_storage::CmpOp::Le,
                5,
            )).unwrap();
            let start = Timestamp::from_yyyymmdd(20200101).unwrap();
            let end = start + 32;
            let (exact_points, _, _) =
                e.estimate_series(0, &pred, AggFunc::Sum, start, end, 1.0).unwrap();
            let (approx_points, label, rate) =
                e.estimate_series(0, &pred, AggFunc::Sum, start, end, 0.2).unwrap();
            assert_eq!(rate, 0.2);
            assert_eq!(label, sampler.label());
            let exact_vals: Vec<f64> = exact_points.iter().map(|p| p.value).collect();
            let approx_vals: Vec<f64> = approx_points.iter().map(|p| p.value).collect();
            let err = flashp_forecast::metrics::mean_relative_error(&approx_vals, &exact_vals)
                .unwrap();
            assert!(err < 0.5, "{}: mean relative error {err}", sampler.label());
        }
    }

    #[test]
    fn forecast_on_samples_works() {
        let e = engine(SamplerChoice::OptimalGsw);
        let r = e.forecast(FORECAST_SQL).unwrap();
        assert_eq!(r.rate_used, 0.05);
        assert!(r.mean_noise_variance > 0.0);
        assert!(r.estimates.iter().all(|p| p.variance.is_some()));
        assert!(r.forecast_values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn noise_aware_widen() {
        let e = engine(SamplerChoice::OptimalGsw);
        let base = e.forecast(FORECAST_SQL).unwrap();
        let wide = e
            .forecast(
                &FORECAST_SQL.replace("FORE_PERIOD = 5", "FORE_PERIOD = 5, NOISE_AWARE = 1"),
            )
            .unwrap();
        assert!(wide.mean_interval_width() > base.mean_interval_width());
    }

    #[test]
    fn select_group_by_time() {
        let e = engine(SamplerChoice::Uniform);
        let r = e
            .select("SELECT SUM(m1) FROM T WHERE seg <= 5 AND t >= 20200101 AND t <= 20200105 GROUP BY t")
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        assert!(!r.approximate);
        // Matches the per-day engine estimate at rate 1.
        let pred = e
            .table
            .compile_predicate(&flashp_storage::Predicate::cmp(
                "seg",
                flashp_storage::CmpOp::Le,
                5,
            ))
            .unwrap();
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        let exact = e.table.aggregate_at(t0, 0, &pred, AggFunc::Sum).unwrap();
        assert_eq!(r.rows[0].1, exact);
    }

    #[test]
    fn select_scalar_and_point() {
        let e = engine(SamplerChoice::Uniform);
        let one = e.select("SELECT COUNT(*) FROM T WHERE t = 20200101").unwrap();
        assert_eq!(one.rows.len(), 1);
        assert_eq!(one.rows[0].1, 400.0);
        let range = e
            .select("SELECT COUNT(*) FROM T WHERE t BETWEEN 20200101 AND 20200103")
            .unwrap();
        assert_eq!(range.rows[0].1, 1200.0);
        // Out-of-table range clamps to empty.
        let empty = e.select("SELECT SUM(m1) FROM T WHERE t >= 20300101").unwrap();
        assert!(empty.rows.is_empty());
    }

    #[test]
    fn execute_dispatches() {
        let e = engine(SamplerChoice::Uniform);
        match e.execute(FORECAST_SQL).unwrap() {
            ExecOutput::Forecast(f) => assert_eq!(f.forecasts.len(), 5),
            _ => panic!("expected forecast output"),
        }
        match e.execute("SELECT SUM(m1) FROM T WHERE t = 20200101").unwrap() {
            ExecOutput::Select(s) => assert_eq!(s.rows.len(), 1),
            _ => panic!("expected select output"),
        }
        assert!(matches!(
            e.select(FORECAST_SQL),
            Err(EngineError::WrongStatement { .. })
        ));
    }

    #[test]
    fn errors_for_misuse() {
        let e = engine(SamplerChoice::Uniform);
        // Unknown measure.
        assert!(e.forecast("FORECAST SUM(nope) FROM T USING (20200101, 20200110)").is_err());
        // Reversed range.
        assert!(e.forecast("FORECAST SUM(m1) FROM T USING (20200110, 20200101)").is_err());
        // COUNT(*) with SUM.
        assert!(e.forecast("FORECAST SUM(*) FROM T USING (20200101, 20200110)").is_err());
        // Bad sample rate.
        assert!(e
            .forecast(
                "FORECAST SUM(m1) FROM T USING (20200101, 20200131) OPTION (SAMPLE_RATE = 3.0)"
            )
            .is_err());
        // Range beyond the table at full rate.
        assert!(e
            .forecast("FORECAST SUM(m1) FROM T USING (20200101, 20300101) OPTION (SAMPLE_RATE = 1.0)")
            .is_err());
    }

    #[test]
    fn unbuilt_engine_rejects_sampled_queries_but_allows_exact() {
        let e = FlashPEngine::new(test_table(), EngineConfig::default());
        let sampled = e.forecast(FORECAST_SQL);
        assert!(matches!(sampled, Err(EngineError::SamplesUnavailable(_))));
        let exact = e.forecast(
            "FORECAST SUM(m1) FROM T USING (20200101, 20200202) \
             OPTION (MODEL = 'naive', SAMPLE_RATE = 1.0)",
        );
        assert!(exact.is_ok());
    }

    #[test]
    fn table_name_validation() {
        let config =
            EngineConfig { table_name: Some("ads".to_string()), ..Default::default() };
        let e = FlashPEngine::new(test_table(), config);
        assert!(e
            .forecast("FORECAST SUM(m1) FROM wrong USING (20200101, 20200131) OPTION (SAMPLE_RATE = 1.0)")
            .is_err());
        assert!(e
            .forecast("FORECAST SUM(m1) FROM ADS USING (20200101, 20200202) OPTION (SAMPLE_RATE = 1.0, MODEL = 'naive')")
            .is_ok());
    }

    #[test]
    fn grouping_policies() {
        // Auto grouping with 2 groups on 2 proportional measures collapses
        // to nearly zero radius; explicit grouping validates coverage.
        let config = EngineConfig {
            sampler: SamplerChoice::ArithmeticGsw,
            grouping: GroupingPolicy::Auto { num_groups: 2 },
            layer_rates: vec![0.1],
            ..Default::default()
        };
        let mut e = FlashPEngine::new(test_table(), config);
        let stats = e.build_samples().unwrap();
        assert!(!stats.groups.is_empty());
        let total: usize = stats.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 2);

        let bad = EngineConfig {
            sampler: SamplerChoice::ArithmeticGsw,
            grouping: GroupingPolicy::Explicit(vec![vec![0]]),
            ..Default::default()
        };
        let mut e = FlashPEngine::new(test_table(), bad);
        assert!(e.build_samples().is_err(), "groups must cover every measure");
    }

    #[test]
    fn build_is_deterministic() {
        let mk = || {
            let config = EngineConfig {
                layer_rates: vec![0.1],
                sampler: SamplerChoice::OptimalGsw,
                ..Default::default()
            };
            let mut e = FlashPEngine::new(test_table(), config);
            e.build_samples().unwrap();
            let pred = e.table.compile_predicate(&flashp_storage::Predicate::True).unwrap();
            let start = Timestamp::from_yyyymmdd(20200101).unwrap();
            let (points, _, _) =
                e.estimate_series(0, &pred, AggFunc::Sum, start, start + 10, 0.1).unwrap();
            points.iter().map(|p| p.value).collect::<Vec<f64>>()
        };
        assert_eq!(mk(), mk());
    }
}
