//! The FlashP engine: a cheap, concurrently shareable handle over a
//! versioned table + sample catalog, fronting the staged query pipeline
//! `parse → plan → prepare → execute`.
//!
//! Mirrors the deployment of §5: the *Offline Sample Preprocessor*
//! ([`crate::SampleCatalog::build`]) draws multi-layer samples per
//! partition once; the *Online Forecasting Service* — this engine — then
//! serves many concurrent FORECAST/SELECT tasks against it. The engine is
//! `Clone + Send + Sync`: every field sits behind an [`Arc`], so handing a
//! handle to each worker thread copies pointers, not samples.
//!
//! The engine serves queries from an **active [`CatalogVersion`]** — an
//! immutable `(table, catalog)` snapshot behind an atomically swappable
//! `Arc`. [`FlashPEngine::ingest`] stages new rows invisibly;
//! [`FlashPEngine::publish`] derives a new catalog version incrementally
//! (only changed cells recomputed, §4.1) and swaps it in. Every
//! execution snapshots the active version exactly once, so answers are
//! never torn across versions and in-flight executions are never blocked
//! by a swap. All clones of a handle observe publishes; prepared queries
//! re-snapshot per execution, so the same prepared handle serves fresh
//! data after each publish.
//!
//! One-shot [`FlashPEngine::execute`] keeps an LRU plan cache keyed on the
//! normalized statement text and scoped to the version it was planned
//! against; a publish invalidates the replaced version's entries.
//! [`FlashPEngine::prepare`] goes further and returns a
//! [`PreparedQuery`] that owns its plan and compiled predicate — the hot
//! path for a service loop, with no lock on the execution path.

use crate::catalog::{BuildStats, SampleCatalog};
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::explain::{explain_plan, PlanNode};
use crate::partial_cache::{self, PartialCache, PartialCacheStats, PARTIAL_CACHE_CAPACITY};
use crate::planner::{LogicalPlan, Planner};
use crate::prepared::{ExecCtx, PreparedQuery, SpecCache, SPEC_CACHE_CAPACITY};
use crate::result::{ExecOutput, ForecastResult, SelectResult, SeriesPoint};
use crate::version::{CatalogDelta, CatalogVersion, IngestBatch, PublishStats};
use flashp_query::{parse, ForecastStmt, SelectStmt, Statement};
use flashp_storage::{AggFunc, CompiledPredicate, TimeSeriesTable, Timestamp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Default number of plans the statement cache retains.
const PLAN_CACHE_CAPACITY: usize = 128;

/// Counters describing plan-cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to plan from scratch.
    pub misses: u64,
    /// Plans currently cached.
    pub entries: usize,
}

/// A point-in-time snapshot of engine-level counters, cheap enough to
/// poll from a service loop (one read lock + one mutex, no scans).
/// Fields are sampled one after another, so under concurrent writers the
/// snapshot is only approximately consistent — good enough for the
/// observability endpoints it feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// The active [`CatalogVersion::version`].
    pub version: u64,
    /// The active sample catalog's version, if a catalog is attached.
    pub catalog_version: Option<u64>,
    /// Plan-cache effectiveness for this handle's shared cache.
    pub plan_cache: PlanCacheStats,
    /// Day-partial cache counters; `None` when the cache is disabled
    /// (config or `FLASHP_NO_PARTIAL_CACHE=1`).
    pub partial_cache: Option<PartialCacheStats>,
    /// Rows staged by [`FlashPEngine::ingest`] awaiting the next publish.
    pub pending_rows: usize,
    /// Partitions the pending rows touch (cells the next publish rebuilds).
    pub pending_partitions: usize,
}

/// LRU plan cache keyed on normalized statement text. Shared (via `Arc`)
/// by every clone of an engine handle. Only the one-shot string APIs
/// touch it; prepared queries bypass it entirely.
///
/// Every entry records the [`CatalogVersion::version`] it was planned
/// against: plans embed layer indices, clamped time ranges and
/// dictionary-folded predicates, all of which a publish may invalidate,
/// so a lookup only hits when the requesting handle's active version
/// matches. [`PlanCache::purge_version`] drops a replaced version's
/// entries eagerly after a swap.
struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct CacheEntry {
    last_used: u64,
    /// [`CatalogVersion::version`] of the planning snapshot.
    version: u64,
    plan: Arc<LogicalPlan>,
}

struct CacheInner {
    map: HashMap<String, CacheEntry>,
    tick: u64,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            capacity,
            inner: Mutex::new(CacheInner { map: HashMap::new(), tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get(&self, key: &str, version: u64) -> Option<Arc<LogicalPlan>> {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) if entry.version == version => {
                entry.last_used = tick;
                let plan = entry.plan.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            // A plan over a different version is useless to this handle:
            // miss and re-plan. The entry stays — a successful re-plan
            // overwrites it, while a handle that cannot plan (e.g. a clone
            // with no catalog) must not evict another handle's good plan.
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, key: String, version: u64, plan: Arc<LogicalPlan>) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // Evict the least recently used entry.
            if let Some(lru) =
                inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
            }
        }
        inner.map.insert(key, CacheEntry { last_used: tick, version, plan });
    }

    /// Drop every entry scoped to `version` — called after a publish
    /// replaces that version, whose entries can never hit again (version
    /// numbers are process-unique and never reused).
    fn purge_version(&self, version: u64) {
        self.inner.lock().expect("plan cache poisoned").map.retain(|_, e| e.version != version);
    }

    fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("plan cache poisoned").map.len(),
        }
    }
}

/// Normalize statement text for plan-cache keying: collapse whitespace
/// runs outside string literals into single spaces and trim the ends.
/// Identifier and literal case is preserved (only whitespace differs
/// between equivalent spellings this cheap pass can prove equal).
fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut quote: Option<char> = None;
    let mut pending_space = false;
    for c in sql.chars() {
        match quote {
            Some(q) => {
                out.push(c);
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '\'' || c == '"' {
                    if pending_space && !out.is_empty() {
                        out.push(' ');
                    }
                    pending_space = false;
                    out.push(c);
                    quote = Some(c);
                } else if c.is_whitespace() {
                    pending_space = true;
                } else {
                    if pending_space && !out.is_empty() {
                        out.push(' ');
                    }
                    pending_space = false;
                    out.push(c);
                }
            }
        }
    }
    out
}

/// The shared, swappable state behind every clone of an engine handle
/// (and behind every [`PreparedQuery`] prepared from it).
pub(crate) struct EngineShared {
    /// The active version. Readers briefly take the read lock to clone
    /// the `Arc` (one snapshot per execution); a publish takes the write
    /// lock only for the pointer swap.
    active: RwLock<Arc<CatalogVersion>>,
    /// Rows ingested but not yet published, plus the delta of changed
    /// partitions. Writers (ingest/publish) serialize on this lock;
    /// readers never touch it.
    pending: Mutex<PendingIngest>,
    /// The day-partial cache shared by every handle and prepared query
    /// over this engine; `None` when disabled by configuration or the
    /// `FLASHP_NO_PARTIAL_CACHE=1` override. Scoped to this shared state:
    /// cells and partitions observed through it can only come from
    /// versions this engine published, so their ids are unambiguous.
    partial: Option<Arc<PartialCache>>,
    /// Shared bind-time specialization cache: `USING (?, ?)` plans
    /// specialized per (statement, version, bound range), visible to every
    /// prepared handle of this engine (the ROADMAP PR 6 follow-on that
    /// replaced the per-handle cap).
    spec: SpecCache,
}

#[derive(Default)]
struct PendingIngest {
    /// Copy-on-write working table, lazily cloned from the active
    /// version at the first ingest after a publish.
    table: Option<TimeSeriesTable>,
    delta: CatalogDelta,
}

impl EngineShared {
    pub(crate) fn new(version: CatalogVersion, config: &EngineConfig) -> Self {
        EngineShared {
            active: RwLock::new(Arc::new(version)),
            pending: Mutex::new(PendingIngest::default()),
            partial: partial_cache::enabled(config)
                .then(|| Arc::new(PartialCache::new(PARTIAL_CACHE_CAPACITY))),
            spec: SpecCache::new(SPEC_CACHE_CAPACITY),
        }
    }

    /// Snapshot the active version (a brief read lock to clone the Arc).
    pub(crate) fn snapshot(&self) -> Arc<CatalogVersion> {
        self.active.read().expect("engine version lock poisoned").clone()
    }

    /// The day-partial cache, if enabled.
    pub(crate) fn partial(&self) -> Option<&PartialCache> {
        self.partial.as_deref()
    }

    /// The shared bind-time specialization cache.
    pub(crate) fn spec(&self) -> &SpecCache {
        &self.spec
    }
}

/// The resolution of a one-shot statement string.
enum Resolved {
    Plan(Arc<LogicalPlan>),
    Explain(PlanNode),
}

/// The FlashP engine handle. See the [module docs](self) for the
/// pipeline; see [`SampleCatalog::build`] for the offline stage.
#[derive(Clone)]
pub struct FlashPEngine {
    shared: Arc<EngineShared>,
    config: Arc<EngineConfig>,
    plan_cache: Arc<PlanCache>,
}

impl FlashPEngine {
    /// Wrap a table with the given configuration. The table is shared via
    /// [`Arc`], so several engines (e.g. one per sampler in an experiment)
    /// can serve the same data without copying it. Exact (rate = 1)
    /// queries work immediately; attach a catalog — via
    /// [`FlashPEngine::with_catalog`] or the legacy
    /// [`FlashPEngine::build_samples`] — before issuing sampled queries.
    pub fn new(table: impl Into<Arc<TimeSeriesTable>>, config: EngineConfig) -> Self {
        let shared = Arc::new(EngineShared::new(CatalogVersion::new(table.into(), None), &config));
        FlashPEngine {
            shared,
            config: Arc::new(config),
            plan_cache: Arc::new(PlanCache::new(PLAN_CACHE_CAPACITY)),
        }
    }

    /// An engine over a pre-built sample catalog (the staged replacement
    /// for `new` + `build_samples`): build the catalog once with
    /// [`SampleCatalog::build`], then hand it to any number of engines.
    ///
    /// The catalog must have been built from this `table` (planning
    /// validates the schemas match and returns a configuration error for
    /// a mismatched catalog; a same-schema table with different contents
    /// cannot be detected).
    pub fn with_catalog(
        table: impl Into<Arc<TimeSeriesTable>>,
        config: EngineConfig,
        catalog: impl Into<Arc<SampleCatalog>>,
    ) -> Self {
        let version = CatalogVersion::new(table.into(), Some(catalog.into()));
        let shared = Arc::new(EngineShared::new(version, &config));
        FlashPEngine {
            shared,
            config: Arc::new(config),
            plan_cache: Arc::new(PlanCache::new(PLAN_CACHE_CAPACITY)),
        }
    }

    /// Snapshot the active [`CatalogVersion`]: the immutable `(table,
    /// catalog)` pair queries issued *now* would execute against.
    /// Everything reachable from the snapshot stays valid (and unchanged)
    /// for as long as the `Arc` is held, regardless of later publishes.
    pub fn snapshot(&self) -> Arc<CatalogVersion> {
        self.shared.snapshot()
    }

    /// The version number of the active snapshot; bumps on every
    /// [`FlashPEngine::publish`] (and on the legacy
    /// [`FlashPEngine::build_samples`]).
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// The active version's table.
    pub fn table(&self) -> Arc<TimeSeriesTable> {
        self.snapshot().table().clone()
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The active version's sample catalog, if any.
    pub fn catalog(&self) -> Option<Arc<SampleCatalog>> {
        self.snapshot().catalog().cloned()
    }

    /// Resolved measure groups (populated when a catalog built with a
    /// compressed sampler is attached).
    pub fn groups(&self) -> Vec<Vec<usize>> {
        self.snapshot().catalog().map(|c| c.groups().to_vec()).unwrap_or_default()
    }

    /// Plan-cache hit/miss counters for this handle's shared cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Day-partial cache counters, or `None` when the cache is disabled
    /// (configuration or `FLASHP_NO_PARTIAL_CACHE=1`).
    pub fn partial_cache_stats(&self) -> Option<PartialCacheStats> {
        self.shared.partial().map(|c| c.stats())
    }

    /// Whether the day-partial cache is active for this engine.
    pub(crate) fn partial_enabled(&self) -> bool {
        self.shared.partial().is_some()
    }

    /// Snapshot the engine-level counters: active version numbers,
    /// plan-cache effectiveness, and the size of the staged-but-unpublished
    /// ingest backlog. See [`EngineStats`].
    pub fn stats(&self) -> EngineStats {
        let snapshot = self.snapshot();
        let (pending_rows, pending_partitions) = {
            let pending = self.shared.pending.lock().expect("ingest lock poisoned");
            (pending.delta.appended_rows(), pending.delta.num_changed())
        };
        EngineStats {
            version: snapshot.version(),
            catalog_version: snapshot.catalog().map(|c| c.version()),
            plan_cache: self.plan_cache.stats(),
            partial_cache: self.partial_cache_stats(),
            pending_rows,
            pending_partitions,
        }
    }

    /// Stage a batch of rows for ingestion. The rows are applied to a
    /// pending copy-on-write table and are **invisible to queries** until
    /// the next [`FlashPEngine::publish`]; several batches may accumulate
    /// into one publish. Returns the number of rows staged. Staging is
    /// all-or-nothing: a batch that fails partway (e.g. a type mismatch
    /// in its third item) leaves the pending state exactly as it was.
    /// Concurrent ingests (and an ingest racing a publish) serialize on
    /// an internal lock; queries are never blocked.
    pub fn ingest(&self, batch: IngestBatch) -> Result<usize, EngineError> {
        if batch.is_empty() {
            return Ok(0);
        }
        let mut pending = self.shared.pending.lock().expect("ingest lock poisoned");
        if pending.table.is_none() {
            pending.table = Some(self.shared.snapshot().table().as_ref().clone());
        }
        // Apply to a copy-on-write scratch clone so a mid-batch error
        // cannot leave the pending state half-staged (cloning shares
        // every partition via `Arc`; only the days the batch touches are
        // physically copied, and on the scratch, not the original).
        let mut table = pending.table.clone().expect("just initialized");
        let mut delta = pending.delta.clone();
        let appended = batch.apply(&mut table, &mut delta)?;
        pending.table = Some(table);
        pending.delta = delta;
        Ok(appended)
    }

    /// Publish everything staged since the last publish as a new
    /// [`CatalogVersion`]: derive the new sample catalog incrementally
    /// ([`SampleCatalog::apply_delta`] — only changed cells recomputed,
    /// grown GSW cells absorbed per §4.1), swap the active version
    /// atomically, and invalidate the replaced version's plan-cache
    /// entries.
    ///
    /// In-flight executions keep running, lock-free, against whichever
    /// version they snapshotted; new executions (including new calls on
    /// existing [`PreparedQuery`] handles) see the published version. A
    /// publish with nothing staged is a no-op that reports the current
    /// version.
    pub fn publish(&self) -> Result<PublishStats, EngineError> {
        let start = Instant::now();
        let mut pending = self.shared.pending.lock().expect("ingest lock poisoned");
        let old = self.shared.snapshot();
        if pending.table.is_none() || pending.delta.is_empty() {
            return Ok(PublishStats {
                version: old.version(),
                catalog_version: old.catalog().map(|c| c.version()),
                appended_rows: 0,
                changed_partitions: 0,
                delta: Default::default(),
                duration: start.elapsed(),
            });
        }
        // Derive the new catalog while still serving the old version —
        // the expensive part happens outside the swap lock and *before*
        // the pending state is consumed, so a derivation error leaves
        // every staged row in place for a later retry.
        let staged = pending.table.as_ref().expect("checked above");
        let (catalog, delta_stats) = match old.catalog() {
            Some(catalog) => {
                let (derived, stats) = catalog.apply_delta(staged, &self.config, &pending.delta)?;
                (Some(Arc::new(derived)), stats)
            }
            None => (None, Default::default()),
        };
        let table = pending.table.take().expect("checked above");
        let delta = std::mem::take(&mut pending.delta);
        let next = Arc::new(CatalogVersion::new(Arc::new(table), catalog));
        let stats = PublishStats {
            version: next.version(),
            catalog_version: next.catalog().map(|c| c.version()),
            appended_rows: delta.appended_rows(),
            changed_partitions: delta.num_changed(),
            delta: delta_stats,
            duration: start.elapsed(),
        };
        // The swap: a brief write lock — readers only ever hold this lock
        // long enough to clone the Arc, so no execution waits on another.
        *self.shared.active.write().expect("engine version lock poisoned") = next;
        self.plan_cache.purge_version(old.version());
        // Specialized plans are version-scoped like one-shot plans; the
        // day-partial cache needs no purge — its entries key on cell
        // identities, which the publish already retired structurally.
        self.shared.spec().purge_version(old.version());
        Ok(stats)
    }

    /// Deprecated shim: run the offline sample preprocessor in place.
    ///
    /// Prefer [`SampleCatalog::build`] + [`FlashPEngine::with_catalog`],
    /// which never borrow an engine mutably — the staged API for services
    /// that share one engine handle across threads. This wrapper builds a
    /// catalog from the engine's own table and configuration and attaches
    /// it to *this* handle under a fresh version (clones made earlier
    /// keep serving their old version; cached plans are version-scoped,
    /// so no stale plan can execute).
    pub fn build_samples(&mut self) -> Result<BuildStats, EngineError> {
        let snapshot = self.shared.snapshot();
        let catalog = SampleCatalog::build(snapshot.table(), &self.config)?;
        let stats = catalog.stats().clone();
        let version = CatalogVersion::new(snapshot.table().clone(), Some(Arc::new(catalog)));
        // Detach: this handle moves to a fresh shared slot (with fresh,
        // empty caches) so earlier clones keep their catalog-less version,
        // preserving the legacy per-handle attachment semantics.
        self.shared = Arc::new(EngineShared::new(version, &self.config));
        Ok(stats)
    }

    fn planner<'a>(&'a self, snapshot: &'a CatalogVersion) -> Planner<'a> {
        Planner::new(snapshot.table(), &self.config, snapshot.catalog().map(|c| c.as_ref()))
    }

    pub(crate) fn ctx<'a>(&'a self, snapshot: &'a CatalogVersion) -> ExecCtx<'a> {
        ExecCtx {
            table: snapshot.table(),
            config: &self.config,
            catalog: snapshot.catalog().map(|c| c.as_ref()),
            partial: self.shared.partial(),
        }
    }

    /// Plan a parsed statement (the `plan` stage, exposed for callers that
    /// parse or build statements themselves). Plans against the active
    /// version at the time of the call.
    pub fn plan(&self, stmt: &Statement) -> Result<LogicalPlan, EngineError> {
        self.planner(&self.snapshot()).plan(stmt)
    }

    /// Prepare a statement: parse, plan, and package into a `Send + Sync`
    /// [`PreparedQuery`] executable repeatedly (and concurrently) through
    /// `&self`. `?` placeholders in the constraint become parameters of
    /// [`PreparedQuery::execute_with`]. Each execution snapshots the
    /// engine's *then-active* version (re-planning lazily when a publish
    /// moved it), so the same prepared handle serves newly published
    /// data — including days outside the range the plan originally
    /// clamped to.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery, EngineError> {
        let stmt = parse(sql)?;
        if matches!(stmt, Statement::Explain(_)) {
            return Err(EngineError::WrongStatement { expected: "FORECAST or SELECT" });
        }
        let snapshot = self.snapshot();
        let plan = self.planner(&snapshot).plan(&stmt)?;
        // Key the shared specialization cache on the normalized statement
        // text, so equivalent prepares from any handle share entries.
        let stmt_key = crate::partial_cache::fnv64(normalize_sql(sql).as_bytes());
        Ok(PreparedQuery::new(
            self.shared.clone(),
            self.config.clone(),
            stmt,
            stmt_key,
            snapshot.version(),
            plan,
        ))
    }

    /// Plan a statement and render it as an `EXPLAIN` tree without
    /// executing. Accepts the statement with or without a leading
    /// `EXPLAIN` keyword. Sampled plans name the catalog version they
    /// were planned against.
    pub fn explain(&self, sql: &str) -> Result<PlanNode, EngineError> {
        let stmt = match parse(sql)? {
            Statement::Explain(inner) => *inner,
            other => other,
        };
        let snapshot = self.snapshot();
        let plan = self.planner(&snapshot).plan(&stmt)?;
        let mut node = explain_plan(&plan, snapshot.table().schema(), self.partial_enabled());
        crate::prepared::annotate_day_split(&self.ctx(&snapshot), &plan, &[], &mut node);
        Ok(node)
    }

    /// Resolve a one-shot statement string against `snapshot`: serve the
    /// plan from the LRU cache when the normalized text matches and was
    /// planned against the same version, otherwise parse + plan and
    /// cache. `EXPLAIN` statements plan but render instead of executing
    /// (and are never cached — their output *is* the plan).
    fn resolve(&self, snapshot: &CatalogVersion, sql: &str) -> Result<Resolved, EngineError> {
        let key = normalize_sql(sql);
        // EXPLAIN statements bypass the cache outright — they are never
        // inserted, so probing would charge a phantom miss per call and
        // skew the hit-rate the stats report.
        let cacheable = !key.get(..8).is_some_and(|p| p.eq_ignore_ascii_case("EXPLAIN "));
        if cacheable {
            if let Some(plan) = self.plan_cache.get(&key, snapshot.version()) {
                return Ok(Resolved::Plan(plan));
            }
        }
        match parse(sql)? {
            Statement::Explain(inner) => {
                let plan = self.planner(snapshot).plan(&inner)?;
                let mut node =
                    explain_plan(&plan, snapshot.table().schema(), self.partial_enabled());
                crate::prepared::annotate_day_split(&self.ctx(snapshot), &plan, &[], &mut node);
                Ok(Resolved::Explain(node))
            }
            stmt => {
                let plan = Arc::new(self.planner(snapshot).plan(&stmt)?);
                self.plan_cache.insert(key, snapshot.version(), plan.clone());
                Ok(Resolved::Plan(plan))
            }
        }
    }

    /// Execute any statement. `EXPLAIN <stmt>` returns the rendered plan.
    pub fn execute(&self, sql: &str) -> Result<ExecOutput, EngineError> {
        let snapshot = self.snapshot();
        match self.resolve(&snapshot, sql)? {
            Resolved::Plan(plan) => self.ctx(&snapshot).execute_plan(&plan, &[]),
            Resolved::Explain(node) => Ok(ExecOutput::Plan(node)),
        }
    }

    /// Execute a FORECAST statement (errors on SELECT/EXPLAIN).
    pub fn forecast(&self, sql: &str) -> Result<ForecastResult, EngineError> {
        let snapshot = self.snapshot();
        match self.resolve(&snapshot, sql)? {
            Resolved::Plan(plan) => match &*plan {
                LogicalPlan::Forecast(p) => self.ctx(&snapshot).execute_forecast(p, &[]),
                LogicalPlan::Select(_) => Err(EngineError::WrongStatement { expected: "FORECAST" }),
            },
            Resolved::Explain(_) => Err(EngineError::WrongStatement { expected: "FORECAST" }),
        }
    }

    /// Execute a SELECT statement (errors on FORECAST/EXPLAIN).
    pub fn select(&self, sql: &str) -> Result<SelectResult, EngineError> {
        let snapshot = self.snapshot();
        match self.resolve(&snapshot, sql)? {
            Resolved::Plan(plan) => match &*plan {
                LogicalPlan::Select(p) => self.ctx(&snapshot).execute_select(p, &[]),
                LogicalPlan::Forecast(_) => Err(EngineError::WrongStatement { expected: "SELECT" }),
            },
            Resolved::Explain(_) => Err(EngineError::WrongStatement { expected: "SELECT" }),
        }
    }

    /// Run a forecasting task from a parsed statement (plans, then runs
    /// the full two-phase pipeline of §2.1). Bypasses the plan cache.
    pub fn run_forecast(&self, stmt: &ForecastStmt) -> Result<ForecastResult, EngineError> {
        let snapshot = self.snapshot();
        let plan = self.planner(&snapshot).plan_forecast(stmt)?;
        self.ctx(&snapshot).execute_forecast(&plan, &[])
    }

    /// Run a SELECT from a parsed statement. Bypasses the plan cache.
    pub fn run_select(&self, stmt: &SelectStmt) -> Result<SelectResult, EngineError> {
        let snapshot = self.snapshot();
        let plan = self.planner(&snapshot).plan_select(stmt)?;
        self.ctx(&snapshot).execute_select(&plan, &[])
    }

    /// Estimate the per-timestamp aggregates over `[start, end]`. Rate 1
    /// runs the exact parallel scan; otherwise the cheapest adequate
    /// sample layer answers. Returns the points, the sampler label, and
    /// the rate actually used.
    pub fn estimate_series(
        &self,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        rate: f64,
    ) -> Result<(Vec<SeriesPoint>, String, f64), EngineError> {
        let snapshot = self.snapshot();
        let ctx = self.ctx(&snapshot);
        if rate >= 1.0 {
            let points =
                ctx.estimate_exact(measure, pred, agg, start, end, flashp_storage::SumMode::Exact)?;
            return Ok((points, "full scan".to_string(), 1.0));
        }
        let catalog = snapshot.catalog().ok_or_else(EngineError::no_samples)?;
        catalog.check_schema(snapshot.table())?;
        let (_, layer) = catalog.select_layer(rate).ok_or_else(EngineError::no_samples)?;
        let points = ctx.estimate_from_layer(
            layer,
            layer.bucket_for(measure),
            measure,
            pred,
            agg,
            start,
            end,
            crate::prepared::Missing::Error,
        )?;
        Ok((points, layer.sampler_label.clone(), layer.rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GroupingPolicy, SamplerChoice};
    use crate::test_support::test_table;
    use flashp_storage::Value;

    fn engine(sampler: SamplerChoice) -> FlashPEngine {
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler,
            default_rate: 0.05,
            ..Default::default()
        };
        let mut e = FlashPEngine::new(test_table(), config);
        e.build_samples().unwrap();
        e
    }

    const FORECAST_SQL: &str = "FORECAST SUM(m1) FROM T WHERE seg <= 5 \
         USING (20200101, 20200202) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";

    #[test]
    fn full_rate_pipeline_end_to_end() {
        let e = engine(SamplerChoice::Uniform);
        let sql = "FORECAST SUM(m1) FROM T WHERE seg <= 5 USING (20200101, 20200202) \
                   OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5, SAMPLE_RATE = 1.0)";
        let r = e.forecast(sql).unwrap();
        assert_eq!(r.estimates.len(), 33);
        assert_eq!(r.forecasts.len(), 5);
        assert_eq!(r.rate_used, 1.0);
        assert_eq!(r.sampler, "full scan");
        assert_eq!(r.mean_noise_variance, 0.0);
        assert!(r.forecasts.iter().all(|f| f.lo <= f.value && f.value <= f.hi));
        // Forecast timestamps continue the training range.
        assert_eq!(r.forecasts[0].t.to_yyyymmdd(), 20200203);
    }

    #[test]
    fn sampled_estimates_track_exact_series() {
        for sampler in [
            SamplerChoice::Uniform,
            SamplerChoice::OptimalGsw,
            SamplerChoice::Priority,
            SamplerChoice::Threshold,
            SamplerChoice::ArithmeticGsw,
            SamplerChoice::GeometricGsw,
        ] {
            let e = engine(sampler.clone());
            let pred = e
                .table()
                .compile_predicate(&flashp_storage::Predicate::cmp(
                    "seg",
                    flashp_storage::CmpOp::Le,
                    5,
                ))
                .unwrap();
            let start = Timestamp::from_yyyymmdd(20200101).unwrap();
            let end = start + 32;
            let (exact_points, _, _) =
                e.estimate_series(0, &pred, AggFunc::Sum, start, end, 1.0).unwrap();
            let (approx_points, label, rate) =
                e.estimate_series(0, &pred, AggFunc::Sum, start, end, 0.2).unwrap();
            assert_eq!(rate, 0.2);
            assert_eq!(label, sampler.label());
            let exact_vals: Vec<f64> = exact_points.iter().map(|p| p.value).collect();
            let approx_vals: Vec<f64> = approx_points.iter().map(|p| p.value).collect();
            let err =
                flashp_forecast::metrics::mean_relative_error(&approx_vals, &exact_vals).unwrap();
            assert!(err < 0.5, "{}: mean relative error {err}", sampler.label());
        }
    }

    #[test]
    fn forecast_on_samples_works() {
        let e = engine(SamplerChoice::OptimalGsw);
        let r = e.forecast(FORECAST_SQL).unwrap();
        assert_eq!(r.rate_used, 0.05);
        assert!(r.mean_noise_variance > 0.0);
        assert!(r.estimates.iter().all(|p| p.variance.is_some()));
        assert!(r.forecast_values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn noise_aware_widen() {
        let e = engine(SamplerChoice::OptimalGsw);
        let base = e.forecast(FORECAST_SQL).unwrap();
        let wide = e
            .forecast(&FORECAST_SQL.replace("FORE_PERIOD = 5", "FORE_PERIOD = 5, NOISE_AWARE = 1"))
            .unwrap();
        assert!(wide.mean_interval_width() > base.mean_interval_width());
    }

    #[test]
    fn select_group_by_time() {
        let e = engine(SamplerChoice::Uniform);
        let r = e
            .select(
                "SELECT SUM(m1) FROM T WHERE seg <= 5 AND t >= 20200101 AND t <= 20200105 GROUP BY t",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 5);
        assert!(!r.approximate);
        // Matches the per-day engine estimate at rate 1.
        let table = e.table();
        let pred = table
            .compile_predicate(&flashp_storage::Predicate::cmp("seg", flashp_storage::CmpOp::Le, 5))
            .unwrap();
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        let exact = table.aggregate_at(t0, 0, &pred, AggFunc::Sum).unwrap();
        assert_eq!(r.rows[0].1, exact);
    }

    #[test]
    fn select_scalar_and_point() {
        let e = engine(SamplerChoice::Uniform);
        let one = e.select("SELECT COUNT(*) FROM T WHERE t = 20200101").unwrap();
        assert_eq!(one.rows.len(), 1);
        assert_eq!(one.rows[0].1, 400.0);
        let range =
            e.select("SELECT COUNT(*) FROM T WHERE t BETWEEN 20200101 AND 20200103").unwrap();
        assert_eq!(range.rows[0].1, 1200.0);
        // Out-of-table range clamps to empty.
        let empty = e.select("SELECT SUM(m1) FROM T WHERE t >= 20300101").unwrap();
        assert!(empty.rows.is_empty());
    }

    #[test]
    fn approximate_select_carries_std_err() {
        let e = engine(SamplerChoice::OptimalGsw);
        let r = e
            .select(
                "SELECT SUM(m1) FROM T WHERE seg <= 5 AND t BETWEEN 20200101 AND 20200105 \
                 GROUP BY t OPTION (SAMPLE_RATE = 0.2)",
            )
            .unwrap();
        assert!(r.approximate);
        assert_eq!(r.rows.len(), 5);
        assert!(r.rows.iter().all(|(_, v, se)| *v > 0.0 && se.unwrap() > 0.0));
        // Scalar approximate SUM: std_err adds in quadrature over days.
        let scalar = e
            .select(
                "SELECT SUM(m1) FROM T WHERE seg <= 5 AND t BETWEEN 20200101 AND 20200105 \
                 OPTION (SAMPLE_RATE = 0.2)",
            )
            .unwrap();
        assert!(scalar.approximate);
        assert_eq!(scalar.rows.len(), 1);
        let (_, value, std_err) = scalar.rows[0];
        assert_eq!(value, r.rows.iter().map(|(_, v, _)| v).sum::<f64>());
        let var_sum: f64 = r.rows.iter().map(|(_, _, se)| se.unwrap().powi(2)).sum();
        assert!((std_err.unwrap() - var_sum.sqrt()).abs() < 1e-9);
        // AVG has no plug-in variance but still estimates.
        let avg = e
            .select(
                "SELECT AVG(m1) FROM T WHERE t BETWEEN 20200101 AND 20200105 \
                 OPTION (SAMPLE_RATE = 0.2)",
            )
            .unwrap();
        assert!(avg.approximate);
        assert!(avg.rows[0].1 > 0.0);
        assert!(avg.rows[0].2.is_none());
    }

    #[test]
    fn mismatched_catalog_is_a_typed_error() {
        use flashp_storage::{DataType, Schema};
        // Catalog built from a 1-measure table…
        let schema = Schema::from_names(&[("seg", DataType::Int64)], &["m"]).unwrap().into_shared();
        let mut small = flashp_storage::TimeSeriesTable::new(schema);
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        for day in 0..5i64 {
            for row in 0..100i64 {
                small.append_row(t0 + day, &[Value::Int(row % 10)], &[1.0]).unwrap();
            }
        }
        let config = EngineConfig {
            layer_rates: vec![0.5],
            sampler: SamplerChoice::OptimalGsw,
            ..Default::default()
        };
        let catalog = SampleCatalog::build(&small, &config).unwrap();
        // …attached to a 2-measure table: sampled queries on the second
        // measure must error cleanly, not index out of bounds.
        let e = FlashPEngine::with_catalog(test_table(), config, catalog);
        let err = e.forecast("FORECAST SUM(m2) FROM T USING (20200101, 20200105)").unwrap_err();
        assert!(
            matches!(err, EngineError::Config(ref msg) if msg.contains("different schema")),
            "got: {err}"
        );
        // Exact queries never touch the catalog and still work.
        assert!(e
            .forecast(
                "FORECAST SUM(m2) FROM T USING (20200101, 20200105) \
                 OPTION (SAMPLE_RATE = 1.0, MODEL = 'naive')"
            )
            .is_ok());
    }

    #[test]
    fn approximate_select_tolerates_partition_gaps() {
        // A table with a hole (no rows on day 2): the sampled SELECT must
        // answer wherever the exact SELECT answers, skipping absent days.
        use flashp_storage::{DataType, Schema};
        let schema = Schema::from_names(&[("seg", DataType::Int64)], &["m"]).unwrap().into_shared();
        let mut table = flashp_storage::TimeSeriesTable::new(schema);
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        for day in [0i64, 2, 3] {
            for row in 0..200i64 {
                table.append_row(t0 + day, &[Value::Int(row % 10)], &[1.0 + row as f64]).unwrap();
            }
        }
        let config = EngineConfig {
            layer_rates: vec![0.5],
            sampler: SamplerChoice::Uniform,
            ..Default::default()
        };
        let mut e = FlashPEngine::new(table, config);
        e.build_samples().unwrap();
        let sql = "SELECT SUM(m) FROM T WHERE t BETWEEN 20200101 AND 20200104 GROUP BY t";
        let exact = e.select(sql).unwrap();
        assert_eq!(exact.rows.len(), 3, "exact path skips the missing day");
        let approx = e.select(&format!("{sql} OPTION (SAMPLE_RATE = 0.5)")).unwrap();
        assert_eq!(approx.rows.len(), 3, "sampled path must skip it too");
        assert_eq!(
            exact.rows.iter().map(|r| r.0).collect::<Vec<_>>(),
            approx.rows.iter().map(|r| r.0).collect::<Vec<_>>()
        );
        // Scalar form too.
        let scalar = e
            .select(
                "SELECT SUM(m) FROM T WHERE t BETWEEN 20200101 AND 20200104 \
                 OPTION (SAMPLE_RATE = 0.5)",
            )
            .unwrap();
        assert_eq!(scalar.rows.len(), 1);
        assert!(scalar.rows[0].1 > 0.0);
        // FORECAST still requires a contiguous training series.
        let fc = e
            .forecast("FORECAST SUM(m) FROM T USING (20200101, 20200104) OPTION (MODEL = 'naive')");
        assert!(matches!(fc, Err(EngineError::SamplesUnavailable(_))));
    }

    #[test]
    fn execute_dispatches() {
        let e = engine(SamplerChoice::Uniform);
        match e.execute(FORECAST_SQL).unwrap() {
            ExecOutput::Forecast(f) => assert_eq!(f.forecasts.len(), 5),
            _ => panic!("expected forecast output"),
        }
        match e.execute("SELECT SUM(m1) FROM T WHERE t = 20200101").unwrap() {
            ExecOutput::Select(s) => assert_eq!(s.rows.len(), 1),
            _ => panic!("expected select output"),
        }
        match e.execute(&format!("EXPLAIN {FORECAST_SQL}")).unwrap() {
            ExecOutput::Plan(node) => assert_eq!(node.name, "Forecast"),
            _ => panic!("expected a plan"),
        }
        assert!(matches!(e.select(FORECAST_SQL), Err(EngineError::WrongStatement { .. })));
    }

    #[test]
    fn plan_cache_hits_and_results_are_identical() {
        let e = engine(SamplerChoice::OptimalGsw);
        let first = e.forecast(FORECAST_SQL).unwrap();
        let before = e.plan_cache_stats();
        // Same statement, different whitespace: normalization still hits.
        let respaced = FORECAST_SQL.replace(' ', "  ");
        let second = e.forecast(&respaced).unwrap();
        let after = e.plan_cache_stats();
        assert!(after.hits > before.hits, "expected a plan-cache hit");
        assert_eq!(first.estimate_values(), second.estimate_values());
        assert_eq!(first.forecast_values(), second.forecast_values());
        // Clones share the cache.
        let clone = e.clone();
        let third = clone.forecast(FORECAST_SQL).unwrap();
        assert!(clone.plan_cache_stats().hits > after.hits);
        assert_eq!(first.forecast_values(), third.forecast_values());
    }

    #[test]
    fn prepared_query_matches_one_shot() {
        let e = engine(SamplerChoice::OptimalGsw);
        let prepared = e.prepare(FORECAST_SQL).unwrap();
        assert_eq!(prepared.num_params(), 0);
        let one_shot = e.forecast(FORECAST_SQL).unwrap();
        for _ in 0..3 {
            let r = prepared.forecast_with(&[]).unwrap();
            assert_eq!(r.estimate_values(), one_shot.estimate_values());
            assert_eq!(r.forecast_values(), one_shot.forecast_values());
            assert_eq!(r.sampler, one_shot.sampler);
            assert_eq!(r.rate_used, one_shot.rate_used);
        }
    }

    #[test]
    fn prepared_parameters_rebind() {
        use flashp_query::Literal;
        let e = engine(SamplerChoice::OptimalGsw);
        let template = e
            .prepare(
                "FORECAST SUM(m1) FROM T WHERE seg <= ? USING (20200101, 20200202) \
                 OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
            )
            .unwrap();
        assert_eq!(template.num_params(), 1);
        for bound in [3i64, 5, 7] {
            let from_template = template.forecast_with(&[Literal::Int(bound)]).unwrap();
            let fresh =
                e.forecast(&FORECAST_SQL.replace("seg <= 5", &format!("seg <= {bound}"))).unwrap();
            assert_eq!(from_template.estimate_values(), fresh.estimate_values());
            assert_eq!(from_template.forecast_values(), fresh.forecast_values());
        }
        // Wrong arity errors cleanly.
        assert!(matches!(template.forecast_with(&[]), Err(EngineError::Parameter(_))));
        assert!(matches!(
            template.forecast_with(&[Literal::Int(1), Literal::Int(2)]),
            Err(EngineError::Parameter(_))
        ));
        // One-shot execution of a parameterized statement is an error.
        assert!(e
            .forecast("FORECAST SUM(m1) FROM T WHERE seg <= ? USING (20200101, 20200202)")
            .is_err());
    }

    #[test]
    fn prepared_using_parameters_match_literal_statements() {
        use flashp_query::Literal;
        let e = engine(SamplerChoice::OptimalGsw);
        let template = e
            .prepare(
                "FORECAST SUM(m1) FROM T WHERE seg <= 5 USING (?, ?) \
                 OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
            )
            .unwrap();
        assert_eq!(template.num_params(), 2);
        assert_eq!(template.specialization_count(), 0);
        for (lo, hi) in [(20200101, 20200202), (20200105, 20200131), (20200103, 20200207)] {
            let bound = template.forecast_with(&[Literal::Int(lo), Literal::Int(hi)]).unwrap();
            let fresh = e
                .forecast(&FORECAST_SQL.replace("(20200101, 20200202)", &format!("({lo}, {hi})")))
                .unwrap();
            assert_eq!(bound.estimate_values(), fresh.estimate_values());
            assert_eq!(bound.forecast_values(), fresh.forecast_values());
            assert_eq!(bound.sampler, fresh.sampler);
            assert_eq!(bound.rate_used, fresh.rate_used);
        }
        assert_eq!(template.specialization_count(), 3);
        // Re-binding an already-seen range reuses its specialization.
        template.forecast_with(&[Literal::Int(20200101), Literal::Int(20200202)]).unwrap();
        assert_eq!(template.specialization_count(), 3);

        // The unbound EXPLAIN shows a deferred source; binding shows the
        // concrete per-binding range and layer choice.
        let unbound = template.explain().unwrap();
        assert_eq!(unbound.find_prop("range"), Some("dynamic"));
        assert!(unbound.find("BindTimeSource").is_some());
        let bound =
            template.explain_with(&[Literal::Int(20200101), Literal::Int(20200202)]).unwrap();
        assert_eq!(bound.find_prop("range"), Some("20200101..20200202"));
        assert!(bound.find("SampleEstimate").is_some());
        assert!(bound.find_prop("rationale").is_some());
    }

    #[test]
    fn prepared_using_parameter_errors_are_typed() {
        use flashp_query::Literal;
        let e = engine(SamplerChoice::OptimalGsw);
        let fc =
            e.prepare("FORECAST SUM(m1) FROM T USING (?, ?) OPTION (MODEL = 'naive')").unwrap();
        // Reversed window: a typed Config error, not a panic.
        let err = fc.forecast_with(&[Literal::Int(20200202), Literal::Int(20200101)]).unwrap_err();
        assert!(matches!(err, EngineError::Config(ref m) if m.contains("reversed")), "{err}");
        // Impossible calendar date names the offending placeholder.
        let err = fc.forecast_with(&[Literal::Int(20200230), Literal::Int(20200301)]).unwrap_err();
        assert!(matches!(err, EngineError::Parameter(ref m) if m.contains("?0")), "{err}");
        // Wrong type, missing values.
        let err =
            fc.forecast_with(&[Literal::Str("x".into()), Literal::Int(20200201)]).unwrap_err();
        assert!(matches!(err, EngineError::Parameter(_)), "{err}");
        assert!(matches!(fc.forecast_with(&[]), Err(EngineError::Parameter(_))));

        // SELECT: inverted or fully out-of-table bindings are the empty
        // result — same as their literal counterparts — never a panic.
        let sel = e.prepare("SELECT SUM(m1) FROM T WHERE t BETWEEN ? AND ? GROUP BY t").unwrap();
        let inverted = sel.select_with(&[Literal::Int(20200210), Literal::Int(20200105)]).unwrap();
        assert!(inverted.rows.is_empty());
        let outside = sel.select_with(&[Literal::Int(20300101), Literal::Int(20300131)]).unwrap();
        assert!(outside.rows.is_empty());
        // A partially overlapping binding clamps to the table bounds.
        let clamped = sel.select_with(&[Literal::Int(20191201), Literal::Int(20200103)]).unwrap();
        assert_eq!(clamped.rows.len(), 3);
        assert!(matches!(
            sel.select_with(&[Literal::Int(20200230), Literal::Int(20200301)]),
            Err(EngineError::Parameter(_))
        ));
    }

    #[test]
    fn engine_handle_is_cheap_and_shareable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<FlashPEngine>();
        assert_send_sync::<std::sync::Arc<PreparedQuery>>();

        let e = engine(SamplerChoice::Uniform);
        let prepared = std::sync::Arc::new(e.prepare(FORECAST_SQL).unwrap());
        let baseline = prepared.forecast_with(&[]).unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let prepared = prepared.clone();
                let baseline = baseline.forecast_values();
                scope.spawn(move || {
                    let r = prepared.forecast_with(&[]).unwrap();
                    assert_eq!(r.forecast_values(), baseline);
                });
            }
        });
    }

    #[test]
    fn explain_reports_what_executes() {
        let e = engine(SamplerChoice::OptimalGsw);
        let node = e.explain(FORECAST_SQL).unwrap();
        let est = node.find("SampleEstimate").expect("sampled plan");
        let planned_rate: f64 = est.prop("rate").unwrap().parse().unwrap();
        let planned_sampler = est.prop("sampler").unwrap().to_string();
        // The catalog version in the plan is the active catalog's.
        let planned_version: u64 = est.prop("catalog_version").unwrap().parse().unwrap();
        assert_eq!(planned_version, e.catalog().unwrap().version());
        let r = e.forecast(FORECAST_SQL).unwrap();
        assert_eq!(r.rate_used, planned_rate);
        assert_eq!(r.sampler, planned_sampler);
    }

    #[test]
    fn errors_for_misuse() {
        let e = engine(SamplerChoice::Uniform);
        // Unknown measure.
        assert!(e.forecast("FORECAST SUM(nope) FROM T USING (20200101, 20200110)").is_err());
        // Reversed range.
        assert!(e.forecast("FORECAST SUM(m1) FROM T USING (20200110, 20200101)").is_err());
        // COUNT(*) with SUM.
        assert!(e.forecast("FORECAST SUM(*) FROM T USING (20200101, 20200110)").is_err());
        // Bad sample rate.
        assert!(e
            .forecast(
                "FORECAST SUM(m1) FROM T USING (20200101, 20200131) OPTION (SAMPLE_RATE = 3.0)"
            )
            .is_err());
        // Non-positive horizon must not wrap through `as usize`.
        assert!(e
            .forecast(
                "FORECAST SUM(m1) FROM T USING (20200101, 20200131) OPTION (FORE_PERIOD = -1)"
            )
            .is_err());
        assert!(e
            .forecast("FORECAST SUM(m1) FROM T USING (20200101, 20200131) OPTION (FORE_PERIOD = 0)")
            .is_err());
        // A template referencing an unknown column fails at prepare, not
        // at first execution.
        assert!(e
            .prepare("FORECAST SUM(m1) FROM T WHERE no_such_col <= ? USING (20200101, 20200131)")
            .is_err());
        // Range beyond the table at full rate.
        assert!(e
            .forecast(
                "FORECAST SUM(m1) FROM T USING (20200101, 20300101) OPTION (SAMPLE_RATE = 1.0)"
            )
            .is_err());
    }

    #[test]
    fn unbuilt_engine_rejects_sampled_queries_but_allows_exact() {
        let e = FlashPEngine::new(test_table(), EngineConfig::default());
        let sampled = e.forecast(FORECAST_SQL);
        assert!(matches!(sampled, Err(EngineError::SamplesUnavailable(_))));
        let exact = e.forecast(
            "FORECAST SUM(m1) FROM T USING (20200101, 20200202) \
             OPTION (MODEL = 'naive', SAMPLE_RATE = 1.0)",
        );
        assert!(exact.is_ok());
    }

    #[test]
    fn table_name_validation() {
        let config = EngineConfig { table_name: Some("ads".to_string()), ..Default::default() };
        let e = FlashPEngine::new(test_table(), config);
        assert!(e
            .forecast(
                "FORECAST SUM(m1) FROM wrong USING (20200101, 20200131) OPTION (SAMPLE_RATE = 1.0)"
            )
            .is_err());
        assert!(e
            .forecast(
                "FORECAST SUM(m1) FROM ADS USING (20200101, 20200202) OPTION (SAMPLE_RATE = 1.0, MODEL = 'naive')"
            )
            .is_ok());
    }

    #[test]
    fn grouping_policies() {
        // Auto grouping with 2 groups on 2 proportional measures collapses
        // to nearly zero radius; explicit grouping validates coverage.
        let config = EngineConfig {
            sampler: SamplerChoice::ArithmeticGsw,
            grouping: GroupingPolicy::Auto { num_groups: 2 },
            layer_rates: vec![0.1],
            ..Default::default()
        };
        let mut e = FlashPEngine::new(test_table(), config);
        let stats = e.build_samples().unwrap();
        assert!(!stats.groups.is_empty());
        let total: usize = stats.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 2);

        let bad = EngineConfig {
            sampler: SamplerChoice::ArithmeticGsw,
            grouping: GroupingPolicy::Explicit(vec![vec![0]]),
            ..Default::default()
        };
        let mut e = FlashPEngine::new(test_table(), bad);
        assert!(e.build_samples().is_err(), "groups must cover every measure");
    }

    #[test]
    fn build_is_deterministic() {
        let mk = || {
            let config = EngineConfig {
                layer_rates: vec![0.1],
                sampler: SamplerChoice::OptimalGsw,
                ..Default::default()
            };
            let mut e = FlashPEngine::new(test_table(), config);
            e.build_samples().unwrap();
            let pred = e.table().compile_predicate(&flashp_storage::Predicate::True).unwrap();
            let start = Timestamp::from_yyyymmdd(20200101).unwrap();
            let (points, _, _) =
                e.estimate_series(0, &pred, AggFunc::Sum, start, start + 10, 0.1).unwrap();
            points.iter().map(|p| p.value).collect::<Vec<f64>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn normalize_sql_collapses_whitespace_outside_strings() {
        assert_eq!(normalize_sql("  SELECT   SUM(m)\n FROM  T "), "SELECT SUM(m) FROM T");
        assert_eq!(normalize_sql("x = 'a  b'  AND y = 1"), "x = 'a  b' AND y = 1");
        assert_eq!(normalize_sql("x = \"a  b\""), "x = \"a  b\"");
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        let plan = || {
            Arc::new(LogicalPlan::Select(crate::planner::SelectPlan {
                agg: AggFunc::Sum,
                measure: 0,
                measure_name: "m".to_string(),
                predicate: crate::planner::PredicateSlot::Compiled(
                    flashp_storage::CompiledPredicate::Const(true),
                ),
                range: crate::planner::TimeRangeSlot::Static(None),
                rate: 1.0,
                group_by_time: false,
                fast_sum: false,
                num_params: 0,
                source: crate::planner::SourceSlot::Planned(crate::planner::ScanSource::FullScan {
                    est_rows: 0,
                }),
            }))
        };
        cache.insert("a".to_string(), 1, plan());
        cache.insert("b".to_string(), 1, plan());
        assert!(cache.get("a", 1).is_some()); // refresh a
        cache.insert("c".to_string(), 1, plan()); // evicts b
        assert!(cache.get("a", 1).is_some());
        assert!(cache.get("b", 1).is_none());
        assert!(cache.get("c", 1).is_some());
        assert_eq!(cache.stats().entries, 2);
        // A different version never sees another version's plans, but the
        // entry survives for handles still serving its version.
        assert!(cache.get("a", 2).is_none());
        assert!(cache.get("a", 1).is_some());
        // Purging a replaced version drops exactly its entries.
        cache.insert("d".to_string(), 2, plan());
        cache.purge_version(1);
        assert!(cache.get("a", 1).is_none());
        assert!(cache.get("d", 2).is_some());
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn cache_hits_are_scoped_to_the_handle_catalog() {
        // A clone taken before build_samples holds no catalog; the shared
        // plan cache must not hand it a sampled plan cached by the built
        // handle — it re-plans and fails with the plan-time error.
        let config = EngineConfig {
            layer_rates: vec![0.2, 0.05],
            sampler: SamplerChoice::OptimalGsw,
            default_rate: 0.05,
            ..Default::default()
        };
        let mut built = FlashPEngine::new(test_table(), config);
        let unbuilt = built.clone();
        built.build_samples().unwrap();
        built.forecast(FORECAST_SQL).unwrap(); // caches a sampled plan
        let err = unbuilt.forecast(FORECAST_SQL).unwrap_err();
        assert!(
            matches!(err, EngineError::SamplesUnavailable(ref msg) if msg.contains("build_samples")),
            "expected the plan-time no-samples error, got: {err}"
        );
        // And the built handle still hits its own cached plan.
        let before = built.plan_cache_stats().hits;
        built.forecast(FORECAST_SQL).unwrap();
        assert!(built.plan_cache_stats().hits > before);
    }

    #[test]
    fn ingest_is_invisible_until_publish() {
        let e = engine(SamplerChoice::OptimalGsw);
        let v0 = e.version();
        let count_sql = "SELECT COUNT(*) FROM T WHERE t = 20200101";
        assert_eq!(e.select(count_sql).unwrap().rows[0].1, 400.0);

        let mut batch = IngestBatch::new();
        let t = Timestamp::from_yyyymmdd(20200101).unwrap();
        for row in 0..50i64 {
            batch.push_row(t, &[Value::Int(row % 10), Value::from("a")], &[500.0, 50.0]);
        }
        assert_eq!(e.ingest(batch).unwrap(), 50);
        // Still invisible: same version, same answer.
        assert_eq!(e.version(), v0);
        assert_eq!(e.select(count_sql).unwrap().rows[0].1, 400.0);

        let stats = e.publish().unwrap();
        assert!(stats.version > v0);
        assert_eq!(stats.appended_rows, 50);
        assert_eq!(stats.changed_partitions, 1);
        assert_eq!(e.version(), stats.version);
        assert_eq!(e.select(count_sql).unwrap().rows[0].1, 450.0);
        // Clones observe the publish (same shared slot).
        assert_eq!(e.clone().select(count_sql).unwrap().rows[0].1, 450.0);

        // Publishing with nothing staged is a no-op.
        let idle = e.publish().unwrap();
        assert_eq!(idle.version, stats.version);
        assert_eq!(idle.appended_rows, 0);
    }

    #[test]
    fn prepared_handle_serves_published_data() {
        let e = engine(SamplerChoice::Uniform);
        let prepared = e.prepare("SELECT SUM(m1) FROM T WHERE t = 20200102").unwrap();
        let before = prepared.select_with(&[]).unwrap().rows[0].1;

        let mut batch = IngestBatch::new();
        let t = Timestamp::from_yyyymmdd(20200102).unwrap();
        batch.push_row(t, &[Value::Int(0), Value::from("a")], &[1000.0, 100.0]);
        e.ingest(batch).unwrap();
        // Unpublished: the prepared handle still answers from the old
        // version.
        assert_eq!(prepared.select_with(&[]).unwrap().rows[0].1, before);
        e.publish().unwrap();
        // Published: the *same* prepared handle sees the new rows.
        let after = prepared.select_with(&[]).unwrap().rows[0].1;
        assert!((after - (before + 1000.0)).abs() < 1e-6, "{after} vs {before}");
    }

    #[test]
    fn publish_scopes_plan_cache_to_the_new_version() {
        let e = engine(SamplerChoice::OptimalGsw);
        e.forecast(FORECAST_SQL).unwrap(); // plan cached at v0
        let hits0 = e.plan_cache_stats().hits;
        e.forecast(FORECAST_SQL).unwrap(); // hits at v0
        assert!(e.plan_cache_stats().hits > hits0);

        let mut batch = IngestBatch::new();
        let t = Timestamp::from_yyyymmdd(20200103).unwrap();
        batch.push_row(t, &[Value::Int(1), Value::from("b")], &[900.0, 90.0]);
        e.ingest(batch).unwrap();
        e.publish().unwrap();

        // The v0-scoped entry was purged; the first post-publish execution
        // re-plans (miss), the second hits at the new version.
        let (hits1, misses1) = {
            let s = e.plan_cache_stats();
            (s.hits, s.misses)
        };
        e.forecast(FORECAST_SQL).unwrap();
        let s = e.plan_cache_stats();
        assert_eq!(s.hits, hits1, "stale plan must not be served");
        assert!(s.misses > misses1);
        e.forecast(FORECAST_SQL).unwrap();
        assert!(e.plan_cache_stats().hits > hits1);
    }

    #[test]
    fn explain_does_not_inflate_plan_cache_misses() {
        let e = engine(SamplerChoice::OptimalGsw);
        let s0 = e.plan_cache_stats();
        for _ in 0..3 {
            e.execute(&format!("EXPLAIN {FORECAST_SQL}")).unwrap();
        }
        let s1 = e.plan_cache_stats();
        assert_eq!(s1.misses, s0.misses, "EXPLAIN must not count as a cache miss");
        assert_eq!(s1.hits, s0.hits);
        assert_eq!(s1.entries, s0.entries, "EXPLAIN output is never cached");
    }

    #[test]
    fn stats_snapshot_tracks_ingest_and_publish() {
        let e = engine(SamplerChoice::OptimalGsw);
        let s0 = e.stats();
        assert_eq!(s0.version, e.version());
        assert_eq!(s0.catalog_version, e.catalog().map(|c| c.version()));
        assert_eq!((s0.pending_rows, s0.pending_partitions), (0, 0));

        let mut batch = IngestBatch::new();
        let t = Timestamp::from_yyyymmdd(20200103).unwrap();
        for row in 0..30i64 {
            batch.push_row(t, &[Value::Int(row % 10), Value::from("b")], &[900.0, 90.0]);
        }
        e.ingest(batch).unwrap();
        let staged = e.stats();
        assert_eq!(staged.version, s0.version, "staging does not bump the version");
        assert_eq!((staged.pending_rows, staged.pending_partitions), (30, 1));

        e.publish().unwrap();
        let published = e.stats();
        assert!(published.version > s0.version);
        assert_eq!((published.pending_rows, published.pending_partitions), (0, 0));

        // Plan-cache counters ride along; clones see the same stats.
        e.forecast(FORECAST_SQL).unwrap();
        e.forecast(FORECAST_SQL).unwrap();
        let s = e.clone().stats();
        assert_eq!(s.plan_cache, e.plan_cache_stats());
        assert!(s.plan_cache.hits >= 1);
    }

    #[test]
    fn plan_cache_counters_track_parameterized_statements_across_publishes() {
        let e = engine(SamplerChoice::OptimalGsw);
        // A parameterized statement plans (and caches) fine; one-shot
        // execution then fails arity because no parameters can be bound.
        let sql = "SELECT SUM(m1) FROM T WHERE seg <= ? AND t BETWEEN ? AND ? GROUP BY t";
        let s0 = e.plan_cache_stats();
        assert!(matches!(e.execute(sql), Err(EngineError::Parameter(_))));
        let s1 = e.plan_cache_stats();
        assert_eq!(s1.misses, s0.misses + 1, "first resolve is exactly one miss");
        assert_eq!(s1.entries, s0.entries + 1, "the template plan is cached");
        assert!(matches!(e.execute(sql), Err(EngineError::Parameter(_))));
        let s2 = e.plan_cache_stats();
        assert_eq!((s2.hits, s2.misses), (s1.hits + 1, s1.misses), "second resolve hits");

        // Publishing purges the replaced version's entries: the next
        // resolve is a miss again, and the entry count never double-counts.
        let mut batch = IngestBatch::new();
        let t = Timestamp::from_yyyymmdd(20200103).unwrap();
        batch.push_row(t, &[Value::Int(1), Value::from("b")], &[900.0, 90.0]);
        e.ingest(batch).unwrap();
        e.publish().unwrap();
        assert!(matches!(e.execute(sql), Err(EngineError::Parameter(_))));
        let s3 = e.plan_cache_stats();
        assert_eq!(s3.misses, s2.misses + 1, "purged entry cannot be served");
        assert_eq!(s3.entries, s2.entries, "purge then re-insert is net zero entries");
    }
}
