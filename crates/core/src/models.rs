//! The model factory: `MODEL = '…'` option strings → boxed
//! [`ForecastModel`]s. "Other forecasting models can be plugged in here,
//! too" (§5) — this is the plug point.

use crate::error::EngineError;
use flashp_forecast::{
    ArModel, ArimaModel, AutoArima, AutoArimaConfig, DriftModel, EtsModel, EtsVariant,
    ForecastModel, LstmConfig, LstmForecaster, NaiveModel, SeasonalNaiveModel,
};

/// Build a model from its option-string name. Recognized (case-
/// insensitive):
///
/// * `arima` / `auto_arima` — auto-tuned ARIMA (the paper's default, §5);
/// * `arima(p,d,q)` — fixed orders;
/// * `arma(p,q)` — fixed-order ARMA without differencing;
/// * `ar(p)` — pure autoregression;
/// * `lstm` — the Fig. 4 model (K = 7, d = 4);
/// * `lstm(K,d)` — custom window / hidden size;
/// * `ets`, `holt`, `holt_winters(m)` — exponential smoothing;
/// * `naive`, `seasonal_naive(m)`, `drift` — baselines.
pub fn build_model(name: &str) -> Result<Box<dyn ForecastModel>, EngineError> {
    let trimmed = name.trim();
    let lower = trimmed.to_ascii_lowercase();
    let (base, args) = split_args(&lower)?;
    match base {
        "arima" | "auto_arima" => match args.len() {
            0 => Ok(Box::new(AutoArima::new(AutoArimaConfig::default()))),
            3 => {
                Ok(Box::new(ArimaModel::new(args[0] as usize, args[1] as usize, args[2] as usize)))
            }
            n => Err(EngineError::Config(format!("arima takes 0 or 3 arguments, got {n}"))),
        },
        "arma" => match args.len() {
            2 => Ok(Box::new(flashp_forecast::ArmaModel::new(args[0] as usize, args[1] as usize))),
            n => Err(EngineError::Config(format!("arma takes 2 arguments, got {n}"))),
        },
        "ar" => match args.len() {
            1 => Ok(Box::new(ArModel::new(args[0] as usize))),
            n => Err(EngineError::Config(format!("ar takes 1 argument, got {n}"))),
        },
        "lstm" => match args.len() {
            0 => Ok(Box::new(LstmForecaster::new(LstmConfig::default()))),
            2 => Ok(Box::new(LstmForecaster::new(LstmConfig {
                window: args[0] as usize,
                hidden: args[1] as usize,
                ..LstmConfig::default()
            }))),
            n => Err(EngineError::Config(format!("lstm takes 0 or 2 arguments, got {n}"))),
        },
        "ets" | "ses" => Ok(Box::new(EtsModel::new(EtsVariant::Simple))),
        "holt" => Ok(Box::new(EtsModel::new(EtsVariant::Holt))),
        "holt_winters" => match args.len() {
            1 => Ok(Box::new(EtsModel::new(EtsVariant::HoltWinters { period: args[0] as usize }))),
            n => Err(EngineError::Config(format!("holt_winters takes 1 argument, got {n}"))),
        },
        "naive" => Ok(Box::new(NaiveModel::new())),
        "seasonal_naive" => match args.len() {
            1 => Ok(Box::new(SeasonalNaiveModel::new(args[0] as usize))),
            n => Err(EngineError::Config(format!("seasonal_naive takes 1 argument, got {n}"))),
        },
        "drift" => Ok(Box::new(DriftModel::new())),
        other => Err(EngineError::Config(format!("unknown model '{other}'"))),
    }
}

/// Split `name(arg, …)` into base name and integer arguments.
fn split_args(name: &str) -> Result<(&str, Vec<i64>), EngineError> {
    match name.find('(') {
        None => Ok((name, Vec::new())),
        Some(open) => {
            if !name.ends_with(')') {
                return Err(EngineError::Config(format!("malformed model name '{name}'")));
            }
            let base = &name[..open];
            let inner = &name[open + 1..name.len() - 1];
            let args = inner
                .split(',')
                .map(|a| {
                    a.trim().parse::<i64>().map_err(|_| {
                        EngineError::Config(format!("bad model argument '{a}' in '{name}'"))
                    })
                })
                .collect::<Result<Vec<i64>, _>>()?;
            if args.iter().any(|a| *a < 0) {
                return Err(EngineError::Config(format!("negative model argument in '{name}'")));
            }
            Ok((base, args))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_documented_model() {
        for name in [
            "arima",
            "auto_arima",
            "ARIMA(1,1,1)",
            "arma(1,1)",
            "ar(3)",
            "lstm",
            "LSTM(7,4)",
            "ets",
            "ses",
            "holt",
            "holt_winters(7)",
            "naive",
            "seasonal_naive(7)",
            "drift",
        ] {
            assert!(build_model(name).is_ok(), "model '{name}' should build");
        }
    }

    #[test]
    fn model_names_flow_through() {
        assert_eq!(build_model("arima(1,1,1)").unwrap().name(), "arima(1,1,1)");
        assert_eq!(build_model("lstm").unwrap().name(), "lstm(K=7,d=4)");
        assert_eq!(build_model("naive").unwrap().name(), "naive");
    }

    #[test]
    fn rejects_bad_names() {
        assert!(build_model("prophet").is_err());
        assert!(build_model("arima(1,1)").is_err());
        assert!(build_model("ar()").is_err());
        assert!(build_model("lstm(7").is_err());
        assert!(build_model("ar(x)").is_err());
        assert!(build_model("ar(-1)").is_err());
    }
}
