//! Engine-level error type, wrapping every layer of the pipeline.

use std::fmt;

/// Errors surfaced by the FlashP engine.
#[derive(Debug)]
pub enum EngineError {
    /// Query text failed to parse or bind.
    Parse(flashp_query::ParseError),
    /// Storage-level failure (unknown column, missing partition, …).
    Storage(flashp_storage::StorageError),
    /// Sampling failure.
    Sampling(flashp_sampling::SamplingError),
    /// Model fitting / forecasting failure.
    Forecast(flashp_forecast::ForecastError),
    /// Engine configuration or usage problem.
    Config(String),
    /// Samples have not been built yet (call `build_samples` first) or do
    /// not cover the requested range/measure.
    SamplesUnavailable(String),
    /// A `?` parameter problem: wrong arity, a parameter where none is
    /// allowed, or parameters supplied to a parameterless statement.
    Parameter(String),
    /// The statement was of the wrong kind for the API called.
    WrongStatement {
        /// The statement kind the API expected (e.g. `"FORECAST"`).
        expected: &'static str,
    },
}

impl EngineError {
    /// The shared "sampled query but no catalog" error.
    pub(crate) fn no_samples() -> Self {
        EngineError::SamplesUnavailable(
            "no sample layers built; attach a catalog (SampleCatalog::build + \
             FlashPEngine::with_catalog, or the legacy build_samples())"
                .to_string(),
        )
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "parse error: {e}"),
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Sampling(e) => write!(f, "sampling error: {e}"),
            EngineError::Forecast(e) => write!(f, "forecast error: {e}"),
            EngineError::Config(msg) => write!(f, "configuration error: {msg}"),
            EngineError::SamplesUnavailable(msg) => write!(f, "samples unavailable: {msg}"),
            EngineError::Parameter(msg) => write!(f, "parameter error: {msg}"),
            EngineError::WrongStatement { expected } => {
                write!(f, "wrong statement kind: expected {expected}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Storage(e) => Some(e),
            EngineError::Sampling(e) => Some(e),
            EngineError::Forecast(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flashp_query::ParseError> for EngineError {
    fn from(e: flashp_query::ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<flashp_storage::StorageError> for EngineError {
    fn from(e: flashp_storage::StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<flashp_sampling::SamplingError> for EngineError {
    fn from(e: flashp_sampling::SamplingError) -> Self {
        EngineError::Sampling(e)
    }
}

impl From<flashp_forecast::ForecastError> for EngineError {
    fn from(e: flashp_forecast::ForecastError) -> Self {
        EngineError::Forecast(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = flashp_storage::StorageError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("storage"));
        let e: EngineError = flashp_forecast::ForecastError::NotFitted.into();
        assert!(e.to_string().contains("forecast"));
        let e = EngineError::WrongStatement { expected: "FORECAST" };
        assert!(e.to_string().contains("FORECAST"));
    }
}
