//! Deterministic shard routing: the same dataset and seed must produce
//! the same slot assignment in every run, at every thread count, and the
//! per-shard `STATS` counters must describe that assignment exactly.

use flashp_core::{route_hash, EngineConfig, IngestBatch, ShardConfig, ShardedEngine};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_storage::{Timestamp, Value};

fn per_slot_rows(engine: &ShardedEngine) -> Vec<usize> {
    engine.snapshot().slots().iter().map(|v| v.table().num_rows()).collect()
}

#[test]
fn route_hash_golden_values_pin_the_routing_contract() {
    // The routing hash is part of the deployment contract: rows are
    // placed by it, so changing it silently would strand existing
    // shard layouts. Pin a few values.
    let t = Timestamp::from_yyyymmdd(20200115).unwrap();
    let dims = [Value::Int(28), Value::Str("F".to_string()), Value::Float(1.5)];
    let h = route_hash(&dims, t);
    assert_eq!(h, route_hash(&dims, t), "same inputs, same hash");
    // Distinct keys spread; a changed tag/terminator scheme would
    // collide these.
    let ab_c = [Value::Str("ab".to_string()), Value::Str("c".to_string())];
    let a_bc = [Value::Str("a".to_string()), Value::Str("bc".to_string())];
    assert_ne!(route_hash(&ab_c, t), route_hash(&a_bc, t));
    assert_ne!(route_hash(&[Value::Int(1)], t), route_hash(&[Value::Float(1.0)], t));
    assert_ne!(h, route_hash(&dims, t + 1));
}

#[test]
fn slot_assignment_is_identical_across_builds_and_thread_counts() {
    let ds = generate_dataset(&DatasetConfig::new(300, 21, 42)).unwrap();
    let layout = ShardConfig::with_shards(4);
    let base = EngineConfig::default();

    let build = |threads: usize| {
        let config = EngineConfig { threads, ..base.clone() };
        ShardedEngine::new(&ds.table, config, layout).unwrap()
    };
    let reference = per_slot_rows(&build(1));
    assert_eq!(reference.iter().sum::<usize>(), ds.table.num_rows(), "no rows lost in routing");
    assert!(
        reference.iter().filter(|&&n| n > 0).count() > 1,
        "hash routing must actually spread rows: {reference:?}"
    );
    for threads in [1, 2, 8] {
        for run in 0..2 {
            assert_eq!(
                per_slot_rows(&build(threads)),
                reference,
                "threads={threads} run={run}: slot assignment must be deterministic"
            );
        }
    }

    // A regenerated (identical) dataset routes identically too — the
    // hash sees values, not dictionary codes or partition addresses.
    let ds2 = generate_dataset(&DatasetConfig::new(300, 21, 42)).unwrap();
    let rebuilt = ShardedEngine::new(&ds2.table, base, layout).unwrap();
    assert_eq!(per_slot_rows(&rebuilt), reference);
}

#[test]
fn stats_counters_track_the_slot_layout_at_every_shard_count() {
    let ds = generate_dataset(&DatasetConfig::new(300, 21, 42)).unwrap();
    let slot_rows = per_slot_rows(
        &ShardedEngine::new(&ds.table, EngineConfig::default(), ShardConfig::with_shards(1))
            .unwrap(),
    );

    for shards in [1, 2, 4, 8] {
        let layout = ShardConfig::with_shards(shards);
        let engine = ShardedEngine::new(&ds.table, EngineConfig::default(), layout).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.shards.len(), shards);
        assert_eq!(stats.total_rows(), ds.table.num_rows());
        assert_eq!(stats.pending_rows(), 0);
        for shard in &stats.shards {
            let range = layout.slot_range(shard.shard);
            assert_eq!(shard.slots, (range.start, range.end));
            // Each shard's row counter is exactly the sum of its slots'
            // rows — the same slots at every N, just grouped coarser.
            assert_eq!(
                shard.rows,
                slot_rows[range.start..range.end].iter().sum::<usize>(),
                "N={shards} shard {}",
                shard.shard
            );
        }
    }
}

#[test]
fn ingest_routing_is_deterministic_and_visible_in_stats() {
    let ds = generate_dataset(&DatasetConfig::new(300, 21, 42)).unwrap();
    let make_batch = || {
        let mut batch = IngestBatch::new();
        let t = Timestamp::from_yyyymmdd(20200122).unwrap();
        for row in 0..50i64 {
            let dims = [
                Value::Int(20 + row % 40),
                Value::Str(if row % 2 == 0 { "F" } else { "M" }.to_string()),
                Value::Str(format!("city_{:02}", row % 20)),
                Value::Str("mobile".to_string()),
                Value::Str("ios".to_string()),
                Value::Int(row % 5),
                Value::Int(row % 3),
                Value::Int(row % 7),
                Value::Str("search".to_string()),
                Value::Int(row % 4),
                Value::Int(row % 2),
            ];
            batch.push_row(t, &dims, &[150.0, 12.0, 3.0, 1.0]);
        }
        batch
    };

    let pending = |engine: &ShardedEngine| -> Vec<usize> {
        engine.stats().shards.iter().map(|s| s.pending_rows).collect()
    };
    let engine_a =
        ShardedEngine::new(&ds.table, EngineConfig::default(), ShardConfig::with_shards(4))
            .unwrap();
    let engine_b =
        ShardedEngine::new(&ds.table, EngineConfig::default(), ShardConfig::with_shards(4))
            .unwrap();
    assert_eq!(engine_a.ingest(make_batch()).unwrap(), 50);
    assert_eq!(engine_b.ingest(make_batch()).unwrap(), 50);

    let staged = pending(&engine_a);
    assert_eq!(staged.iter().sum::<usize>(), 50);
    assert_eq!(staged, pending(&engine_b), "same rows must stage to the same shards");
    assert!(staged.iter().filter(|&&n| n > 0).count() > 1, "staged rows must spread: {staged:?}");

    // After publish the backlog drains into the same shards' row counts.
    let before: Vec<usize> = engine_a.stats().shards.iter().map(|s| s.rows).collect();
    engine_a.publish().unwrap();
    let after: Vec<usize> = engine_a.stats().shards.iter().map(|s| s.rows).collect();
    assert_eq!(pending(&engine_a), vec![0; 4]);
    let grew: Vec<usize> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
    assert_eq!(grew, staged, "published rows must land where they were staged");
}
