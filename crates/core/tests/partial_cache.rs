//! The day-partial cache oracle suite — the headline contract of the
//! versioned partial cache.
//!
//! The cache memoizes per-day sample partials (`EstimateComponents`) and
//! exact per-partition aggregate states keyed on the **identity** of the
//! catalog cell / partition that produced them. The contract under test:
//! caching changes *when* work happens, never *what* is computed —
//! every answer served warm must be **bit-for-bit identical** to the
//! cache-disabled engine's answer, across `USING (?, ?)` re-bindings,
//! ingest→publish version swaps, shard counts, and the exact
//! (full-scan) path.
//!
//! Counter assertions (hits/misses actually moving) are guarded by
//! [`cache_active`]: the CI matrix re-runs this suite with
//! `FLASHP_NO_PARTIAL_CACHE=1`, where the bit-equality oracle still
//! holds but no cache exists to count against.

use flashp_core::{
    EngineConfig, FlashPEngine, ForecastResult, IngestBatch, Literal, SampleCatalog, SamplerChoice,
    SelectResult, ShardConfig, ShardedEngine,
};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_storage::{TimeSeriesTable, Value};

const FORECAST_TEMPLATE: &str = "FORECAST SUM(Impression) FROM ads \
     WHERE age <= 30 AND gender = 'F' USING (?, ?) \
     OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5, SAMPLE_RATE = 0.2)";

const SELECT_TEMPLATE: &str = "SELECT SUM(Click) FROM ads WHERE age <= 40 AND t BETWEEN ? AND ? \
     GROUP BY t OPTION (SAMPLE_RATE = 0.2)";

/// Overlapping re-bindings: the second and third windows share most of
/// their days with the first, so a working cache serves them mostly warm.
const WINDOWS: [(i64, i64); 3] = [(20200101, 20200125), (20200105, 20200128), (20200103, 20200126)];

/// Whether the engine-level cache can actually be observed: the config
/// default enables it, but the `FLASHP_NO_PARTIAL_CACHE` kill switch
/// (used by the CI cache-disabled job) overrides the config.
fn cache_active() -> bool {
    !std::env::var("FLASHP_NO_PARTIAL_CACHE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn config(partial_cache: bool) -> EngineConfig {
    EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        partial_cache,
        ..Default::default()
    }
}

fn table(seed: u64) -> TimeSeriesTable {
    generate_dataset(&DatasetConfig::new(400, 30, seed)).unwrap().table
}

/// An engine over the 30-day ads dataset. Catalog construction is
/// deterministic in `(table, config)`, so two engines built from the
/// same seed answer bit-identically — the cache-off engine is a valid
/// oracle for the cache-on engine.
fn engine(seed: u64, partial_cache: bool) -> FlashPEngine {
    let table = table(seed);
    let config = config(partial_cache);
    let catalog = SampleCatalog::build(&table, &config).unwrap();
    FlashPEngine::with_catalog(table, config, catalog)
}

fn assert_forecast_bits_eq(a: &ForecastResult, b: &ForecastResult, label: &str) {
    assert_eq!(a.sampler, b.sampler, "{label}: sampler");
    assert_eq!(a.rate_used.to_bits(), b.rate_used.to_bits(), "{label}: rate_used");
    assert_eq!(a.sigma2.to_bits(), b.sigma2.to_bits(), "{label}: sigma2");
    assert_eq!(a.estimates.len(), b.estimates.len(), "{label}: estimate count");
    for (pa, pb) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(pa.t, pb.t, "{label}: estimate timestamp");
        assert_eq!(pa.value.to_bits(), pb.value.to_bits(), "{label}: estimate at {}", pa.t);
        assert_eq!(
            pa.variance.map(f64::to_bits),
            pb.variance.map(f64::to_bits),
            "{label}: variance at {}",
            pa.t
        );
    }
    assert_eq!(a.forecasts.len(), b.forecasts.len(), "{label}: forecast count");
    for (pa, pb) in a.forecasts.iter().zip(&b.forecasts) {
        for (va, vb, field) in
            [(pa.value, pb.value, "value"), (pa.lo, pb.lo, "lo"), (pa.hi, pb.hi, "hi")]
        {
            assert_eq!(va.to_bits(), vb.to_bits(), "{label}: forecast {field} at {}", pa.t);
        }
    }
}

fn assert_select_bits_eq(a: &SelectResult, b: &SelectResult, label: &str) {
    assert_eq!(a.approximate, b.approximate, "{label}: approximate flag");
    assert_eq!(a.rows.len(), b.rows.len(), "{label}: row count");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.0, rb.0, "{label}: timestamp");
        assert_eq!(ra.1.to_bits(), rb.1.to_bits(), "{label}: value at {}", ra.0);
        assert_eq!(ra.2.map(f64::to_bits), rb.2.map(f64::to_bits), "{label}: std_err at {}", ra.0);
    }
}

/// Cold and warm executions of re-bound windows are bit-identical to the
/// cache-disabled oracle engine — FORECAST and SELECT, every window run
/// twice so the second pass is served from memoized day partials.
#[test]
fn warm_rebindings_match_the_uncached_oracle_bit_for_bit() {
    let cached = engine(17, true);
    let oracle = engine(17, false);
    let f = cached.prepare(FORECAST_TEMPLATE).unwrap();
    let s = cached.prepare(SELECT_TEMPLATE).unwrap();
    let f_oracle = oracle.prepare(FORECAST_TEMPLATE).unwrap();
    let s_oracle = oracle.prepare(SELECT_TEMPLATE).unwrap();

    for (round, temp) in ["cold", "warm"].into_iter().enumerate() {
        for (lo, hi) in WINDOWS {
            let label = format!("{temp} USING ({lo}, {hi})");
            let params = [Literal::Int(lo), Literal::Int(hi)];
            let want_f = f_oracle.forecast_with(&params).unwrap();
            let want_s = s_oracle.select_with(&params).unwrap();
            assert_forecast_bits_eq(&want_f, &f.forecast_with(&params).unwrap(), &label);
            assert_select_bits_eq(&want_s, &s.select_with(&params).unwrap(), &label);
        }
        if round == 0 && cache_active() {
            let stats = cached.partial_cache_stats().expect("cache on");
            assert!(stats.misses > 0, "cold pass must populate the cache: {stats:?}");
        }
    }
    if cache_active() {
        let stats = cached.partial_cache_stats().expect("cache on");
        assert!(stats.hits > 0, "warm pass must be served from the cache: {stats:?}");
        assert!(cached.stats().partial_cache.is_some(), "EngineStats must surface the cache");
    } else {
        assert_eq!(cached.partial_cache_stats(), None, "kill switch must disable the cache");
    }
    assert_eq!(oracle.partial_cache_stats(), None, "config off must disable the cache");
}

/// One synthetic ads row for the generated schema (11 dims, 4 measures).
fn ads_row(batch: &mut IngestBatch, t: i64, row: i64) {
    let dims = [
        Value::Int(20 + (row % 40)),
        Value::Str(if row % 2 == 0 { "F" } else { "M" }.to_string()),
        Value::Str(format!("city_{:02}", row % 20)),
        Value::Str("mobile".to_string()),
        Value::Str("ios".to_string()),
        Value::Int(row % 5),
        Value::Int(row % 3),
        Value::Int(row % 7),
        Value::Str("search".to_string()),
        Value::Int(row % 4),
        Value::Int(row % 2),
    ];
    let measures = [150.0 + row as f64, 12.0 + (row % 9) as f64, 3.0, 1.0];
    let t = flashp_storage::Timestamp::from_yyyymmdd(t).unwrap();
    batch.push_row(t, &dims, &measures);
}

/// Publish invalidation is structural and exact: growing one day inside
/// the window gives that day's cells fresh identities while every
/// untouched day keeps its Arc-shared cell — so a warm re-run after the
/// publish recomputes **only** the changed day, and still answers
/// bit-identically to a fresh engine built over the post-publish table.
#[test]
fn publish_invalidates_exactly_the_changed_days() {
    let cached = engine(23, true);
    let f = cached.prepare(FORECAST_TEMPLATE).unwrap();
    let (lo, hi) = (20200102, 20200127);
    let window_days = 26u64;
    let params = [Literal::Int(lo), Literal::Int(hi)];

    // Two runs: populate, then fully warm.
    f.forecast_with(&params).unwrap();
    f.forecast_with(&params).unwrap();
    let before = cached.partial_cache_stats();

    // Grow one existing day inside the window.
    let mut batch = IngestBatch::new();
    for row in 0..120 {
        ads_row(&mut batch, 20200110, row);
    }
    cached.ingest(batch).unwrap();
    cached.publish().unwrap();

    let got = f.forecast_with(&params).unwrap();
    if cache_active() {
        let (before, after) = (before.expect("cache on"), cached.partial_cache_stats().unwrap());
        let new_misses = after.misses - before.misses;
        let new_hits = after.hits - before.hits;
        assert_eq!(new_misses, 1, "only the republished day's cell may miss: {after:?}");
        assert_eq!(new_hits, window_days - 1, "every untouched day must stay warm: {after:?}");
    }

    // Oracle: a fresh cache-disabled engine over the same post-publish
    // table (snapshots share the table Arc, so this is the exact relation
    // the cached engine now serves).
    let snapshot_table = cached.table();
    let oracle_config = config(false);
    let catalog = SampleCatalog::build(&snapshot_table, &oracle_config).unwrap();
    let oracle = FlashPEngine::with_catalog(snapshot_table, oracle_config, catalog);
    let want = oracle.prepare(FORECAST_TEMPLATE).unwrap().forecast_with(&params).unwrap();
    assert_forecast_bits_eq(&want, &got, "post-publish warm re-run");
}

/// The cache lives per slot under sharding, so a warm sharded engine
/// stays shard-count invariant: every binding is run twice at N = 1, 2,
/// and 8 shards and the warm answers compared bit-for-bit against the
/// N = 1 baseline.
#[test]
fn warm_answers_are_shard_count_invariant() {
    let table = table(17);
    let engines: Vec<(usize, ShardedEngine)> = [1usize, 2, 8]
        .into_iter()
        .map(|n| {
            let engine =
                ShardedEngine::with_catalogs(&table, config(true), ShardConfig::with_shards(n))
                    .unwrap();
            (n, engine)
        })
        .collect();
    let prepared: Vec<_> = engines
        .iter()
        .map(|(n, e)| {
            (*n, e.prepare(FORECAST_TEMPLATE).unwrap(), e.prepare(SELECT_TEMPLATE).unwrap())
        })
        .collect();
    for temp in ["cold", "warm"] {
        for (lo, hi) in WINDOWS {
            let params = [Literal::Int(lo), Literal::Int(hi)];
            let (_, f0, s0) = &prepared[0];
            let want_f = f0.forecast_with(&params).unwrap();
            let want_s = s0.select_with(&params).unwrap();
            for (n, f, s) in &prepared[1..] {
                let label = format!("N={n}: {temp} USING ({lo}, {hi})");
                assert_forecast_bits_eq(&want_f, &f.forecast_with(&params).unwrap(), &label);
                assert_select_bits_eq(&want_s, &s.select_with(&params).unwrap(), &label);
            }
        }
    }
    if cache_active() {
        for (n, engine) in &engines {
            let stats = engine.stats();
            let mut total = flashp_core::PartialCacheStats::default();
            for shard in &stats.shards {
                let pc = shard.partial_cache.expect("shard stats must aggregate its slot caches");
                total.add(&pc);
            }
            assert!(total.hits > 0, "N={n}: warm pass must hit the per-slot caches: {total:?}");
        }
    }
}

/// The exact (full-scan) path memoizes per-partition aggregate states
/// keyed on partition identity: warm exact answers are bit-identical to
/// the cache-disabled oracle, for plain SELECT and `SAMPLE_RATE = 1.0`.
#[test]
fn exact_path_warm_matches_the_uncached_oracle() {
    let cached = engine(41, true);
    let oracle = engine(41, false);
    for sql in [
        "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND t BETWEEN 20200105 AND 20200120 \
         GROUP BY t",
        "SELECT AVG(Click) FROM ads WHERE gender = 'F' AND t BETWEEN 20200101 AND 20200128 \
         GROUP BY t",
        "FORECAST COUNT(*) FROM ads USING (20200101, 20200126) \
         OPTION (MODEL = 'naive', SAMPLE_RATE = 1.0)",
        "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND t = 20200105 OPTION (FAST_SUM = 1)",
    ] {
        let want = oracle.execute(sql).unwrap();
        for temp in ["cold", "warm"] {
            let got = cached.execute(sql).unwrap();
            match (&want, &got) {
                (flashp_core::ExecOutput::Select(a), flashp_core::ExecOutput::Select(b)) => {
                    assert_select_bits_eq(a, b, &format!("{temp}: {sql}"));
                }
                (flashp_core::ExecOutput::Forecast(a), flashp_core::ExecOutput::Forecast(b)) => {
                    assert_forecast_bits_eq(a, b, &format!("{temp}: {sql}"));
                }
                _ => panic!("{sql}: mismatched output shapes"),
            }
        }
    }
    if cache_active() {
        let stats = cached.partial_cache_stats().expect("cache on");
        assert!(stats.hits > 0, "warm exact re-runs must hit the cache: {stats:?}");
    }
}
