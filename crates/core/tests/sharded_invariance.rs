//! The shard-invariance oracle suite — the headline contract of the
//! sharded scatter-gather layer.
//!
//! [`ShardedEngine`] routes rows across a **fixed** number of virtual
//! slots and lets the physical shard count only choose how those slots
//! fan out over worker threads. Answers therefore depend on
//! `(data, seed, slots)` and never on the shard count: every query here
//! is executed at N = 1, 2, 4, and 8 shards and asserted **bit-for-bit
//! identical** — exact and sampled, FORECAST and SELECT, one-shot and
//! prepared with `USING (?, ?)` bindings, and across interleaved
//! ingest→publish cycles.

use flashp_core::{
    EngineConfig, ForecastResult, IngestBatch, Literal, SamplerChoice, SelectResult, ShardConfig,
    ShardedEngine,
};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_storage::Value;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The shard counts under test, honoring the CI matrix override: when
/// `FLASHP_SHARDS` is set, the suite pins every engine to that single
/// shard count and compares it against the N=1 baseline.
fn shard_counts() -> Vec<usize> {
    match std::env::var("FLASHP_SHARDS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n > 1 => vec![1, n],
        _ => SHARD_COUNTS.to_vec(),
    }
}

/// One sharded engine per shard count over the same 30-day ads dataset,
/// with per-slot GSW sample catalogs.
fn engines(seed: u64) -> Vec<(usize, ShardedEngine)> {
    let ds = generate_dataset(&DatasetConfig::new(400, 30, seed)).unwrap();
    let config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };
    shard_counts()
        .into_iter()
        .map(|n| {
            let engine = ShardedEngine::with_catalogs(
                &ds.table,
                config.clone(),
                ShardConfig::with_shards(n),
            )
            .unwrap();
            (n, engine)
        })
        .collect()
}

/// Bit-level equality for SELECT results: every row's timestamp, value
/// bits, and std-err bits must match.
fn assert_select_bits_eq(a: &SelectResult, b: &SelectResult, label: &str) {
    assert_eq!(a.approximate, b.approximate, "{label}: approximate flag");
    assert_eq!(a.rows.len(), b.rows.len(), "{label}: row count");
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.0, rb.0, "{label}: timestamp");
        assert_eq!(ra.1.to_bits(), rb.1.to_bits(), "{label}: value at {}", ra.0);
        assert_eq!(ra.2.map(f64::to_bits), rb.2.map(f64::to_bits), "{label}: std_err at {}", ra.0);
    }
}

/// Bit-level equality for FORECAST results: training estimates, forecast
/// points and intervals, model metadata, and the noise decomposition
/// (everything except wall-clock timing).
fn assert_forecast_bits_eq(a: &ForecastResult, b: &ForecastResult, label: &str) {
    assert_eq!(a.model, b.model, "{label}: model");
    assert_eq!(a.sampler, b.sampler, "{label}: sampler");
    assert_eq!(a.rate_used.to_bits(), b.rate_used.to_bits(), "{label}: rate_used");
    assert_eq!(a.confidence.to_bits(), b.confidence.to_bits(), "{label}: confidence");
    assert_eq!(a.sigma2.to_bits(), b.sigma2.to_bits(), "{label}: sigma2");
    assert_eq!(
        a.mean_noise_variance.to_bits(),
        b.mean_noise_variance.to_bits(),
        "{label}: mean_noise_variance"
    );
    assert_eq!(a.estimates.len(), b.estimates.len(), "{label}: estimate count");
    for (pa, pb) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(pa.t, pb.t, "{label}: estimate timestamp");
        assert_eq!(pa.value.to_bits(), pb.value.to_bits(), "{label}: estimate at {}", pa.t);
        assert_eq!(
            pa.variance.map(f64::to_bits),
            pb.variance.map(f64::to_bits),
            "{label}: variance at {}",
            pa.t
        );
    }
    assert_eq!(a.forecasts.len(), b.forecasts.len(), "{label}: forecast count");
    for (pa, pb) in a.forecasts.iter().zip(&b.forecasts) {
        assert_eq!(pa.t, pb.t, "{label}: forecast timestamp");
        for (va, vb, field) in [
            (pa.value, pb.value, "value"),
            (pa.lo, pb.lo, "lo"),
            (pa.hi, pb.hi, "hi"),
            (pa.std_err, pb.std_err, "std_err"),
        ] {
            assert_eq!(va.to_bits(), vb.to_bits(), "{label}: forecast {field} at {}", pa.t);
        }
    }
}

#[test]
fn select_is_shard_count_invariant_exact_and_sampled() {
    let engines = engines(17);
    let (_, baseline) = &engines[0];
    for sql in [
        // Exact: scalar, grouped, and every aggregate family.
        "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND t BETWEEN 20200105 AND 20200120",
        "SELECT COUNT(*) FROM ads WHERE device = 'mobile' AND t BETWEEN 20200101 AND 20200130",
        "SELECT AVG(Click) FROM ads WHERE gender = 'F' AND t BETWEEN 20200101 AND 20200130 \
         GROUP BY t",
        "SELECT SUM(Favorite) FROM ads WHERE t BETWEEN 20200101 AND 20200130 GROUP BY t",
        // Sampled: both catalog layers, scalar and grouped, every family.
        "SELECT SUM(Click) FROM ads WHERE age <= 40 AND t BETWEEN 20200103 AND 20200110 \
         GROUP BY t OPTION (SAMPLE_RATE = 0.2)",
        "SELECT COUNT(*) FROM ads WHERE gender = 'M' AND t BETWEEN 20200101 AND 20200130 \
         OPTION (SAMPLE_RATE = 0.05)",
        "SELECT AVG(Impression) FROM ads WHERE city = 'city_03' AND \
         t BETWEEN 20200101 AND 20200128 GROUP BY t OPTION (SAMPLE_RATE = 0.2)",
    ] {
        let want = baseline.select(sql).unwrap();
        for (n, engine) in &engines[1..] {
            let got = engine.select(sql).unwrap();
            assert_select_bits_eq(&want, &got, &format!("N={n}: {sql}"));
        }
    }
}

#[test]
fn forecast_is_shard_count_invariant_exact_and_sampled() {
    let engines = engines(17);
    let (_, baseline) = &engines[0];
    for sql in [
        // Exact full-scan training series.
        "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
         USING (20200101, 20200125) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
        // Sampled, noise-aware training series from the per-slot catalogs.
        "FORECAST SUM(Click) FROM ads WHERE age <= 40 \
         USING (20200101, 20200128) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7, SAMPLE_RATE = 0.2)",
        "FORECAST COUNT(*) FROM ads WHERE device = 'mobile' \
         USING (20200102, 20200126) OPTION (FORE_PERIOD = 3, SAMPLE_RATE = 0.05)",
    ] {
        let want = baseline.forecast(sql).unwrap();
        for (n, engine) in &engines[1..] {
            let got = engine.forecast(sql).unwrap();
            assert_forecast_bits_eq(&want, &got, &format!("N={n}: {sql}"));
        }
    }
}

#[test]
fn prepared_bindings_are_shard_count_invariant() {
    let engines = engines(17);
    let forecast_sql = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
         USING (?, ?) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5, SAMPLE_RATE = 0.2)";
    let select_sql = "SELECT SUM(Click) FROM ads WHERE age <= 40 AND t BETWEEN ? AND ? \
         GROUP BY t OPTION (SAMPLE_RATE = 0.2)";
    let prepared: Vec<_> = engines
        .iter()
        .map(|(n, e)| (*n, e.prepare(forecast_sql).unwrap(), e.prepare(select_sql).unwrap()))
        .collect();
    // Re-binding the same handles to different windows must stay
    // invariant for every binding.
    for (lo, hi) in [(20200101, 20200125), (20200105, 20200130)] {
        let params = [Literal::Int(lo), Literal::Int(hi)];
        let (_, f0, s0) = &prepared[0];
        let want_f = f0.forecast_with(&params).unwrap();
        let want_s = s0.select_with(&params).unwrap();
        for (n, f, s) in &prepared[1..] {
            let label = format!("N={n}: USING ({lo}, {hi})");
            assert_forecast_bits_eq(&want_f, &f.forecast_with(&params).unwrap(), &label);
            assert_select_bits_eq(&want_s, &s.select_with(&params).unwrap(), &label);
        }
    }

    // A SELECT binding wider than the table clamps to the table bounds
    // (bit-identically); an absolute FORECAST window does not clamp, so
    // the sampled path errors — identically at every shard count.
    let params = [Literal::Int(20191201), Literal::Int(20200215)];
    let (_, f0, s0) = &prepared[0];
    let want_s = s0.select_with(&params).unwrap();
    let want_err = format!("{:?}", f0.forecast_with(&params).unwrap_err());
    for (n, f, s) in &prepared[1..] {
        let label = format!("N={n}: USING (20191201, 20200215)");
        assert_select_bits_eq(&want_s, &s.select_with(&params).unwrap(), &label);
        let got_err = format!("{:?}", f.forecast_with(&params).unwrap_err());
        assert_eq!(want_err, got_err, "{label}: error parity");
    }
}

/// One synthetic ads row routed by its dimension key: varying age and
/// city spreads the rows over different slots.
fn ads_row(batch: &mut IngestBatch, t: i64, row: i64) {
    let dims = [
        Value::Int(20 + (row % 40)),
        Value::Str(if row % 2 == 0 { "F" } else { "M" }.to_string()),
        Value::Str(format!("city_{:02}", row % 20)),
        Value::Str("mobile".to_string()),
        Value::Str("ios".to_string()),
        Value::Int(row % 5),
        Value::Int(row % 3),
        Value::Int(row % 7),
        Value::Str("search".to_string()),
        Value::Int(row % 4),
        Value::Int(row % 2),
    ];
    let measures = [150.0 + row as f64, 12.0 + (row % 9) as f64, 3.0, 1.0];
    let t = flashp_storage::Timestamp::from_yyyymmdd(t).unwrap();
    batch.push_row(t, &dims, &measures);
}

#[test]
fn interleaved_ingest_publish_cycles_stay_shard_count_invariant() {
    let engines = engines(23);
    let probe = "SELECT SUM(Impression) FROM ads WHERE age <= 45 AND \
                 t BETWEEN 20200125 AND 20200204 GROUP BY t";
    let sampled_probe = "SELECT SUM(Click) FROM ads WHERE age <= 45 AND \
                 t BETWEEN 20200120 AND 20200204 GROUP BY t OPTION (SAMPLE_RATE = 0.2)";
    let prepared: Vec<_> = engines
        .iter()
        .map(|(n, e)| {
            let p = e
                .prepare(
                    "FORECAST SUM(Impression) FROM ads WHERE age <= 45 USING (?, ?) \
                     OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
                )
                .unwrap();
            (*n, p)
        })
        .collect();

    // The same interleaving on every engine: stage two days, query (the
    // staged rows must be invisible), publish, query again (now visible),
    // then a second cycle that grows an existing day, with the prepared
    // handle re-executed across the version swaps.
    let assert_probe_invariant = |label: &str| {
        let (_, baseline) = &engines[0];
        let want = baseline.select(probe).unwrap();
        let want_sampled = baseline.select(sampled_probe).unwrap();
        for (n, engine) in &engines[1..] {
            assert_select_bits_eq(&want, &engine.select(probe).unwrap(), &format!("N={n} {label}"));
            assert_select_bits_eq(
                &want_sampled,
                &engine.select(sampled_probe).unwrap(),
                &format!("N={n} {label} (sampled)"),
            );
        }
    };
    let make_batch = |days: &[i64], rows: i64| {
        let mut batch = IngestBatch::new();
        for &day in days {
            for row in 0..rows {
                ads_row(&mut batch, day, row);
            }
        }
        batch
    };

    assert_probe_invariant("before any ingest");
    let before: Vec<SelectResult> = engines.iter().map(|(_, e)| e.select(probe).unwrap()).collect();

    for (i, (_, engine)) in engines.iter().enumerate() {
        let staged = engine.ingest(make_batch(&[20200131, 20200201], 120)).unwrap();
        assert_eq!(staged, 240);
        // Staged rows are invisible until publish, at any shard count.
        assert_select_bits_eq(&before[i], &engine.select(probe).unwrap(), "staged-invisible");
    }
    assert_probe_invariant("with staged rows");

    let publish_stats: Vec<_> = engines.iter().map(|(_, e)| e.publish().unwrap()).collect();
    for (i, stats) in publish_stats.iter().enumerate() {
        assert_eq!(stats.appended_rows, 240, "N={}", engines[i].0);
        // The merged sampler-delta accounting is itself invariant.
        assert_eq!(
            (stats.delta.rebuilt_cells, stats.delta.absorbed_cells, stats.delta.fallback_redraws),
            (
                publish_stats[0].delta.rebuilt_cells,
                publish_stats[0].delta.absorbed_cells,
                publish_stats[0].delta.fallback_redraws
            ),
            "N={}",
            engines[i].0
        );
    }
    assert_probe_invariant("after first publish");

    // Prepared handles re-plan against the new version and stay invariant.
    let params = [Literal::Int(20200105), Literal::Int(20200201)];
    let (_, p0) = &prepared[0];
    let want = p0.forecast_with(&params).unwrap();
    for (n, p) in &prepared[1..] {
        assert_forecast_bits_eq(
            &want,
            &p.forecast_with(&params).unwrap(),
            &format!("N={n} prepared after publish"),
        );
    }

    // Second cycle: grow an existing day and add a fresh one.
    for (_, engine) in &engines {
        engine.ingest(make_batch(&[20200201, 20200204], 80)).unwrap();
        engine.publish().unwrap();
    }
    assert_probe_invariant("after second publish");
    let want = p0.forecast_with(&params).unwrap();
    for (n, p) in &prepared[1..] {
        assert_forecast_bits_eq(
            &want,
            &p.forecast_with(&params).unwrap(),
            &format!("N={n} prepared after second publish"),
        );
    }
}

#[test]
fn empty_publish_is_a_noop_at_every_shard_count() {
    for (n, engine) in engines(17) {
        let v0 = engine.version();
        let stats = engine.publish().unwrap();
        assert_eq!(stats.appended_rows, 0, "N={n}");
        assert_eq!(engine.version(), v0, "N={n}: empty publish must not swap the outer version");
    }
}
