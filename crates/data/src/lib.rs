//! # flashp-data
//!
//! Synthetic stand-in for the paper's production dataset, plus the
//! workload generator and the PIM baseline of the evaluation (§6).
//!
//! The real FlashP evaluation uses an Alibaba ads dataset: 11 user-profile
//! dimensions, 4 measures (Impression, Click, Favorite, Cart), ~15 M rows
//! per day for 200 days. That data is proprietary, so [`generator`] builds
//! the closest synthetic equivalent that exercises the same code paths:
//!
//! * **heavy-tailed measures** (lognormal) with a funnel correlation
//!   (Click from Impression, Favorite/Cart downstream) — this is what
//!   separates uniform from weighted samplers;
//! * **cross-dimension correlation** (device→OS, city→tier, age/gender →
//!   activity) — this is what biases the PIM independence assumption;
//! * **per-segment temporal structure** (trend + weekly/monthly
//!   seasonality whose amplitude depends on the segment) so that
//!   different constraints select genuinely different time series.
//!
//! [`workload`] draws random constraints calibrated to a target
//! selectivity, as in "forecasting tasks are randomly picked … with some
//! (approximately) fixed selectivity". [`pim`] implements the Partwise
//! Independence Model baseline of Agarwal et al. \[7\].

pub mod config;
pub mod dimensions;
pub mod error;
pub mod generator;
pub mod measures;
pub mod pim;
pub mod stream;
pub mod temporal;
pub mod workload;

pub use config::DatasetConfig;
pub use error::DataError;
pub use generator::{generate_dataset, Dataset};
pub use pim::PimModel;
pub use stream::{BatchStream, StreamBatch, StreamConfig};
pub use workload::{Task, WorkloadConfig, WorkloadGenerator};
