//! Dataset generator configuration.

use crate::error::DataError;

/// Configuration of the synthetic ads dataset.
///
/// Scale note: the paper's production table has ~15 M rows/day over 200
/// days. Defaults here are laptop-scale (20 k rows/day); every experiment
/// binary accepts `FLASHP_ROWS_PER_DAY` / `FLASHP_DAYS` env overrides to
/// scale up.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Average rows per day (actual counts vary by day of week).
    pub rows_per_day: usize,
    /// Number of daily partitions to generate.
    pub num_days: usize,
    /// First day as a `YYYYMMDD` literal.
    pub start_date: i64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
    /// Name the table is registered under (used in SQL).
    pub table_name: String,
}

impl DatasetConfig {
    /// Dataset mirroring the paper's layout, starting 2020-01-01 (so
    /// `USING (20200101, 20200528)` covers 150 days — the paper's default
    /// training length).
    pub fn new(rows_per_day: usize, num_days: usize, seed: u64) -> Self {
        DatasetConfig {
            rows_per_day,
            num_days,
            start_date: 20200101,
            seed,
            table_name: "ads".to_string(),
        }
    }

    /// Tiny preset for unit tests and examples (2 k rows/day, 70 days).
    pub fn small(seed: u64) -> Self {
        DatasetConfig::new(2_000, 70, seed)
    }

    /// The experiment preset (50 k rows/day, 200 days), overridable via
    /// `FLASHP_ROWS_PER_DAY` and `FLASHP_DAYS`.
    pub fn experiment(seed: u64) -> Self {
        let rows = std::env::var("FLASHP_ROWS_PER_DAY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50_000);
        let days = std::env::var("FLASHP_DAYS").ok().and_then(|v| v.parse().ok()).unwrap_or(200);
        DatasetConfig::new(rows, days, seed)
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.rows_per_day == 0 {
            return Err(DataError::InvalidConfig("rows_per_day must be >= 1".to_string()));
        }
        if self.num_days == 0 {
            return Err(DataError::InvalidConfig("num_days must be >= 1".to_string()));
        }
        if self.rows_per_day.checked_mul(self.num_days).is_none() {
            return Err(DataError::InvalidConfig("dataset size overflows".to_string()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(DatasetConfig::small(1).validate().is_ok());
        assert!(DatasetConfig::new(10, 5, 0).validate().is_ok());
        assert!(DatasetConfig::new(0, 5, 0).validate().is_err());
        assert!(DatasetConfig::new(10, 0, 0).validate().is_err());
    }

    #[test]
    fn experiment_preset_has_paper_shape() {
        let c = DatasetConfig::experiment(7);
        assert_eq!(c.seed, 7);
        assert_eq!(c.start_date, 20200101);
        assert!(c.num_days >= 1);
    }
}
