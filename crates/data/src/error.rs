//! Error type for dataset generation and workloads.

use flashp_storage::StorageError;
use std::fmt;

/// Errors from the data generator / workload generator / PIM baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Bad generator configuration.
    InvalidConfig(String),
    /// Underlying storage failure.
    Storage(StorageError),
    /// The workload generator could not hit the requested selectivity.
    SelectivityUnreachable { target: f64, closest: f64 },
    /// PIM could not decompose the constraint into per-dimension parts.
    PimUndecomposable(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig(msg) => write!(f, "invalid dataset config: {msg}"),
            DataError::Storage(e) => write!(f, "storage error: {e}"),
            DataError::SelectivityUnreachable { target, closest } => write!(
                f,
                "could not generate a constraint with selectivity ~{target} (closest: {closest})"
            ),
            DataError::PimUndecomposable(msg) => {
                write!(f, "PIM requires a conjunction of single-dimension parts: {msg}")
            }
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for DataError {
    fn from(e: StorageError) -> Self {
        DataError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = DataError::SelectivityUnreachable { target: 0.05, closest: 0.2 };
        assert!(e.to_string().contains("0.05"));
        let e: DataError = StorageError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("storage"));
    }
}
