//! Random forecasting-task workloads with calibrated selectivity.
//!
//! The paper evaluates on tasks "randomly picked with different measures …
//! and different combinations of dimensions in their constraints, with
//! some (approximately) fixed selectivity". This generator draws random
//! discrete conditions (gender, device, interest, city, …), then tunes a
//! final age-range condition by binary search until the measured
//! selectivity on a reference day lands inside the accepted band.

use crate::dimensions::{NUM_CITIES, NUM_DAYPARTS, NUM_INTERESTS, NUM_MEMBERSHIP};
use crate::error::DataError;
use crate::generator::Dataset;
use flashp_storage::{CmpOp, Predicate, TimeSeriesTable, Timestamp, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Workload generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Target fraction of rows the constraint should select.
    pub target_selectivity: f64,
    /// Accepted band as multiples of the target (e.g. (0.5, 2.0)).
    pub band: (f64, f64),
    /// Random draws before giving up.
    pub max_attempts: usize,
}

impl WorkloadConfig {
    /// Band of ±2× around the target, 300 attempts.
    pub fn new(target_selectivity: f64) -> Self {
        WorkloadConfig { target_selectivity, band: (0.5, 2.0), max_attempts: 300 }
    }
}

/// One generated forecasting task.
#[derive(Debug, Clone)]
pub struct Task {
    /// The dimension constraint `C`.
    pub predicate: Predicate,
    /// Measure index to aggregate/forecast.
    pub measure: usize,
    /// Selectivity measured on the reference day.
    pub selectivity: f64,
}

impl Task {
    /// Render a full FORECAST statement for this task.
    pub fn to_sql(
        &self,
        table: &str,
        measure_name: &str,
        t_start: i64,
        t_end: i64,
        options: &str,
    ) -> String {
        let mut sql = format!(
            "FORECAST SUM({measure_name}) FROM {table} WHERE {} USING ({t_start}, {t_end})",
            self.predicate
        );
        if !options.is_empty() {
            sql.push_str(&format!(" OPTION ({options})"));
        }
        sql
    }
}

/// Generates tasks against a table.
pub struct WorkloadGenerator<'a> {
    table: &'a TimeSeriesTable,
    reference_day: Timestamp,
}

impl<'a> WorkloadGenerator<'a> {
    /// Use the dataset's middle day as the selectivity reference.
    pub fn new(dataset: &'a Dataset) -> Self {
        let mid = dataset.start() + (dataset.config.num_days as i64 / 2);
        WorkloadGenerator { table: &dataset.table, reference_day: mid }
    }

    /// Generate against a bare table, measuring selectivity on
    /// `reference_day`.
    pub fn for_table(table: &'a TimeSeriesTable, reference_day: Timestamp) -> Self {
        WorkloadGenerator { table, reference_day }
    }

    fn selectivity(&self, pred: &Predicate) -> Result<f64, DataError> {
        let compiled = self.table.compile_predicate(pred)?;
        Ok(self.table.selectivity_at(self.reference_day, &compiled)?)
    }

    /// One random discrete (non-age) condition.
    fn random_condition(&self, rng: &mut StdRng) -> Predicate {
        match rng.gen_range(0..7u8) {
            0 => Predicate::eq("gender", if rng.gen::<bool>() { "F" } else { "M" }),
            1 => {
                Predicate::eq("device", *["mobile", "pc", "tablet"].choose(rng).expect("non-empty"))
            }
            2 => {
                // A band of interests.
                let lo = rng.gen_range(0..i64::from(NUM_INTERESTS) - 4);
                let width = rng.gen_range(2..8i64);
                Predicate::cmp("interest", CmpOp::Ge, lo).and(Predicate::cmp(
                    "interest",
                    CmpOp::Le,
                    (lo + width).min(i64::from(NUM_INTERESTS) - 1),
                ))
            }
            3 => {
                // A handful of cities.
                let count = rng.gen_range(2..8usize);
                let mut cities: Vec<usize> = (0..NUM_CITIES).collect();
                cities.shuffle(rng);
                Predicate::In {
                    column: "city".to_string(),
                    values: cities[..count]
                        .iter()
                        .map(|c| Value::Str(crate::dimensions::city_name(*c)))
                        .collect(),
                }
            }
            4 => {
                Predicate::cmp("membership", CmpOp::Ge, rng.gen_range(1..i64::from(NUM_MEMBERSHIP)))
            }
            5 => Predicate::eq(
                "channel",
                *["search", "feed", "social", "direct"].choose(rng).expect("non-empty"),
            ),
            _ => Predicate::cmp("daypart", CmpOp::Le, rng.gen_range(0..i64::from(NUM_DAYPARTS))),
        }
    }

    /// Generate one task for `measure` with the given selectivity target.
    pub fn generate(
        &self,
        measure: usize,
        config: &WorkloadConfig,
        rng: &mut StdRng,
    ) -> Result<Task, DataError> {
        let target = config.target_selectivity;
        let (band_lo, band_hi) = (target * config.band.0, target * config.band.1);
        let mut closest: Option<(Predicate, f64)> = None;

        for _ in 0..config.max_attempts {
            // 0–2 discrete conditions plus a tunable age range.
            let num_discrete = rng.gen_range(0..=2usize);
            let mut conds: Vec<Predicate> =
                (0..num_discrete).map(|_| self.random_condition(rng)).collect();
            let discrete_pred = match conds.len() {
                0 => Predicate::True,
                1 => conds.pop().expect("len checked"),
                _ => Predicate::And(conds),
            };
            let s_discrete = self.selectivity(&discrete_pred)?;
            if s_discrete < band_lo {
                // Already too selective before the age condition: maybe
                // usable as-is, else retry.
                track_closest(&mut closest, discrete_pred.clone(), s_discrete, target);
                if s_discrete >= band_lo && s_discrete <= band_hi {
                    return Ok(Task { predicate: discrete_pred, measure, selectivity: s_discrete });
                }
                continue;
            }
            // Binary search the age-range width so that the combined
            // selectivity lands on target. Selectivity grows with width.
            let age_lo = rng.gen_range(18..40i64);
            let mut lo_w = 0i64; // age range [age_lo, age_lo + w]
            let mut hi_w = 70 - age_lo;
            let mut best: Option<(Predicate, f64)> = None;
            for _ in 0..12 {
                let w = (lo_w + hi_w) / 2;
                let candidate = discrete_pred
                    .clone()
                    .and(Predicate::cmp("age", CmpOp::Ge, age_lo))
                    .and(Predicate::cmp("age", CmpOp::Le, age_lo + w));
                let s = self.selectivity(&candidate)?;
                track_closest(&mut best, candidate, s, target);
                if s < target {
                    lo_w = w + 1;
                } else {
                    hi_w = w.saturating_sub(1);
                }
                if lo_w > hi_w {
                    break;
                }
            }
            if let Some((pred, s)) = best {
                track_closest(&mut closest, pred.clone(), s, target);
                if s >= band_lo && s <= band_hi {
                    return Ok(Task { predicate: pred, measure, selectivity: s });
                }
            }
        }
        match closest {
            Some((pred, s)) if s > 0.0 => Ok(Task { predicate: pred, measure, selectivity: s }),
            Some((_, s)) => Err(DataError::SelectivityUnreachable { target, closest: s }),
            None => Err(DataError::SelectivityUnreachable { target, closest: 0.0 }),
        }
    }
}

fn track_closest(slot: &mut Option<(Predicate, f64)>, pred: Predicate, s: f64, target: f64) {
    let better = match slot {
        Some((_, existing)) => {
            (s.ln() - target.ln()).abs() < (existing.ln() - target.ln()).abs() && s > 0.0
        }
        None => s > 0.0,
    };
    if better {
        *slot = Some((pred, s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;
    use crate::generator::generate_dataset;
    use rand::SeedableRng;

    fn dataset() -> Dataset {
        generate_dataset(&DatasetConfig::new(4_000, 7, 11)).unwrap()
    }

    #[test]
    fn hits_selectivity_bands() {
        let ds = dataset();
        let gen = WorkloadGenerator::new(&ds);
        let mut rng = StdRng::seed_from_u64(0);
        for target in [0.05, 0.2] {
            let config = WorkloadConfig::new(target);
            for _ in 0..5 {
                let task = gen.generate(0, &config, &mut rng).unwrap();
                assert!(
                    task.selectivity >= target * 0.3 && task.selectivity <= target * 3.0,
                    "target {target}: got {}",
                    task.selectivity
                );
            }
        }
    }

    #[test]
    fn small_selectivities_reachable() {
        let ds = dataset();
        let gen = WorkloadGenerator::new(&ds);
        let mut rng = StdRng::seed_from_u64(1);
        let config = WorkloadConfig::new(0.005);
        let task = gen.generate(1, &config, &mut rng).unwrap();
        assert!(task.selectivity > 0.0005 && task.selectivity < 0.05, "{}", task.selectivity);
    }

    #[test]
    fn sql_round_trips_through_parser() {
        let ds = dataset();
        let gen = WorkloadGenerator::new(&ds);
        let mut rng = StdRng::seed_from_u64(2);
        let task = gen.generate(0, &WorkloadConfig::new(0.1), &mut rng).unwrap();
        let sql = task.to_sql("ads", "Impression", 20200101, 20200201, "MODEL = 'arima'");
        let parsed = flashp_query::parse(&sql);
        assert!(parsed.is_ok(), "generated SQL must parse: {sql}\n{:?}", parsed.err());
    }

    #[test]
    fn tasks_vary() {
        let ds = dataset();
        let gen = WorkloadGenerator::new(&ds);
        let mut rng = StdRng::seed_from_u64(3);
        let a = gen.generate(0, &WorkloadConfig::new(0.1), &mut rng).unwrap();
        let b = gen.generate(0, &WorkloadConfig::new(0.1), &mut rng).unwrap();
        assert_ne!(a.predicate, b.predicate, "consecutive tasks should differ");
    }
}
