//! Streaming batch generation for live-ingest workloads.
//!
//! The paper's deployment ingests new time-series rows continuously while
//! the online service keeps answering forecasting tasks (§4.1 is exactly
//! about keeping GSW samples maintainable under such arrivals). This
//! module turns the synthetic dataset of [`crate::generator`] into a
//! deterministic *stream*: an iterator of columnar day-batches that
//! continue (or backfill) a generated dataset's timeline, ready to feed
//! `FlashPEngine::ingest` through an `IngestBatch`.
//!
//! Batches use the same dimension vocabulary and measure model as the
//! dataset generator, so their raw dictionary codes line up with a table
//! produced by [`crate::generate_dataset`] (which pre-interns every
//! categorical value). Generation is deterministic given the stream seed
//! and independent of the dataset's own RNG stream, so streamed rows
//! never duplicate generated rows.

use crate::config::DatasetConfig;
use crate::dimensions::{build_schema, sample_dims};
use crate::measures::sample_measures;
use crate::temporal::day_context;
use flashp_storage::{Partition, PartitionBuilder, SchemaRef, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a batch stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Rows per emitted batch.
    pub rows_per_batch: usize,
    /// Consecutive batches aimed at the same day before the stream moves
    /// to the next day (models intra-day arrivals; must be ≥ 1).
    pub batches_per_day: usize,
    /// Stream RNG seed (independent of the dataset seed).
    pub seed: u64,
}

impl StreamConfig {
    /// A stream of `rows_per_batch`-row batches, one batch per day.
    pub fn new(rows_per_batch: usize, seed: u64) -> Self {
        StreamConfig { rows_per_batch, batches_per_day: 1, seed }
    }

    /// Same stream with `n` batches per day (intra-day arrivals).
    pub fn with_batches_per_day(mut self, n: usize) -> Self {
        self.batches_per_day = n;
        self
    }
}

/// One streamed batch: a columnar partition of rows for one timestamp,
/// with dictionary codes aligned to the generator's vocabulary.
#[derive(Debug)]
pub struct StreamBatch {
    /// The day the rows belong to.
    pub t: Timestamp,
    /// Day index on the dataset's timeline (0 = dataset start).
    pub day_index: usize,
    /// The rows, columnar.
    pub partition: Partition,
}

/// A deterministic, unbounded iterator of [`StreamBatch`]es along a
/// dataset's timeline. Construct with [`BatchStream::continuing`] (new
/// days after the dataset's end) or [`BatchStream::starting_at_day`]
/// (late arrivals for existing days); bound it with `Iterator::take`.
#[derive(Debug)]
pub struct BatchStream {
    schema: SchemaRef,
    start: Timestamp,
    config: StreamConfig,
    next_batch: usize,
    first_day: usize,
}

impl BatchStream {
    /// A stream continuing `dataset`'s timeline: the first batch lands on
    /// the day after the dataset's last day.
    pub fn continuing(dataset: &DatasetConfig, config: StreamConfig) -> Self {
        Self::starting_at_day(dataset, config, dataset.num_days)
    }

    /// A stream starting at an arbitrary `day_index` of `dataset`'s
    /// timeline. Indices below `dataset.num_days` produce late-arriving
    /// rows for days the dataset already covers.
    pub fn starting_at_day(
        dataset: &DatasetConfig,
        config: StreamConfig,
        day_index: usize,
    ) -> Self {
        let start = Timestamp::from_yyyymmdd(dataset.start_date)
            .expect("dataset config validated at generation");
        BatchStream { schema: build_schema(), start, config, next_batch: 0, first_day: day_index }
    }

    /// The day index the next emitted batch will land on.
    pub fn next_day_index(&self) -> usize {
        self.first_day + self.next_batch / self.config.batches_per_day.max(1)
    }
}

impl Iterator for BatchStream {
    type Item = StreamBatch;

    fn next(&mut self) -> Option<StreamBatch> {
        let day_index = self.next_day_index();
        let batch_idx = self.next_batch;
        self.next_batch += 1;

        let t = self.start + day_index as i64;
        // Per-batch RNG derived from the stream seed; the 0xB47C salt
        // keeps it disjoint from the generator's per-day streams.
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ 0xB47C_0000 ^ (batch_idx as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        // Day-level shock shared by all batches of one day so intra-day
        // arrivals stay on the same level.
        let shock = {
            let mut day_rng = StdRng::seed_from_u64(
                self.config.seed ^ (day_index as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            (0.05 * box_muller(&mut day_rng)).exp()
        };
        let ctx = day_context(day_index, t, shock);

        let mut builder = PartitionBuilder::with_capacity(&self.schema, self.config.rows_per_batch);
        for _ in 0..self.config.rows_per_batch {
            let dims = sample_dims(&mut rng);
            let measures = sample_measures(&mut rng, &dims, &ctx);
            builder
                .push_raw_row(&dims.0, &measures)
                .expect("stream produces schema-conformant rows");
        }
        Some(StreamBatch { t, day_index, partition: builder.finish() })
    }
}

fn box_muller(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> DatasetConfig {
        DatasetConfig::new(200, 10, 42)
    }

    #[test]
    fn continues_the_timeline() {
        let stream = BatchStream::continuing(&dataset(), StreamConfig::new(50, 7));
        let batches: Vec<StreamBatch> = stream.take(3).collect();
        assert_eq!(batches[0].day_index, 10, "first batch is the day after the dataset");
        assert_eq!(batches[1].day_index, 11);
        assert_eq!(batches[0].t + 1, batches[1].t);
        for b in &batches {
            assert_eq!(b.partition.num_rows(), 50);
            assert_eq!(b.partition.dims().len(), crate::dimensions::NUM_DIMENSIONS);
            assert_eq!(b.partition.measures().len(), 4);
            assert!(b.partition.measure(0).iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn batches_per_day_groups_batches() {
        let config = StreamConfig::new(20, 7).with_batches_per_day(3);
        let stream = BatchStream::starting_at_day(&dataset(), config, 4);
        let days: Vec<usize> = stream.take(7).map(|b| b.day_index).collect();
        assert_eq!(days, vec![4, 4, 4, 5, 5, 5, 6]);
    }

    #[test]
    fn deterministic_and_disjoint_per_batch() {
        let mk = || {
            BatchStream::continuing(&dataset(), StreamConfig::new(40, 9))
                .take(2)
                .map(|b| b.partition.measure(0).to_vec())
                .collect::<Vec<_>>()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "stream must be deterministic");
        assert_ne!(a[0], a[1], "different batches draw different rows");
    }

    #[test]
    fn codes_align_with_generated_dataset() {
        use flashp_storage::{AggFunc, Predicate};
        // Appending a streamed batch to a generated table must produce
        // rows that existing (string-compiled) predicates can match.
        let ds = crate::generate_dataset(&dataset()).unwrap();
        let mut table = ds.table;
        let batch = BatchStream::continuing(&dataset(), StreamConfig::new(100, 3)).next().unwrap();
        let t = batch.t;
        table.append_partition(t, batch.partition).unwrap();
        let pred = table.compile_predicate(&Predicate::eq("gender", "F")).unwrap();
        let count = table.aggregate_at(t, 0, &pred, AggFunc::Count).unwrap();
        assert!(count > 0.0 && count < 100.0, "streamed rows bind to the dictionary: {count}");
    }
}
