//! Measure generation: heavy-tailed, funnel-correlated, segment- and
//! day-modulated.
//!
//! All four measures are strictly positive continuous values (smoothed
//! counts). Positivity matters: the compressed-GSW theory (trend deviation
//! ρ, range deviation δ, geometric-mean weights) assumes positive
//! measures; the paper's own examples use positive vectors. See DESIGN.md
//! for this substitution note.

use crate::dimensions::{dim, DimValues};
use crate::temporal::{segment_modulation, DayContext};
use rand::rngs::StdRng;
use rand::Rng;

/// Draw a standard normal (Box–Muller; local copy to avoid a dependency
/// edge to the forecast crate).
fn randn(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * randn(rng)).exp()
}

/// Generate `[Impression, Click, Favorite, Cart]` for one row.
///
/// * Impression: lognormal with σ ≈ 1.1 (heavy tail) scaled by the
///   day level and segment modulation.
/// * Click: Impression × CTR, where CTR depends *jointly* on age and
///   gender (the correlation PIM misses) plus noise.
/// * Favorite: downstream of Click with its own noise.
/// * Cart: sparse and very noisy — matching the paper's Table 1, where
///   Cart is hard to forecast even from full data.
pub fn sample_measures(rng: &mut StdRng, dims: &DimValues, ctx: &DayContext) -> [f64; 4] {
    let d = &dims.0;
    let seg = segment_modulation(ctx, d[dim::AGE], d[dim::GENDER], d[dim::INTEREST]);
    // Activity scale by membership and device.
    let member_boost = 1.0 + 0.15 * d[dim::MEMBERSHIP] as f64;
    let device_boost = if d[dim::DEVICE] == 0 { 1.2 } else { 1.0 };
    let scale = ctx.level * seg * member_boost * device_boost;

    let impression = (scale * lognormal(rng, 2.2, 1.1)).max(1.0);

    // CTR: joint in (age, gender) — young women click most in this world.
    let base_ctr = match (d[dim::AGE] < 35, d[dim::GENDER] == 0) {
        (true, true) => 0.16,
        (true, false) => 0.10,
        (false, true) => 0.07,
        (false, false) => 0.05,
    };
    let ctr = (base_ctr * lognormal(rng, 0.0, 0.35)).min(0.9);
    let click = (impression * ctr).max(0.5);

    // Favorite: fraction of clicks, interest-dependent.
    let fav_rate = 0.25 + 0.015 * (d[dim::INTEREST] % 8) as f64;
    let favorite = (click * fav_rate * lognormal(rng, 0.0, 0.45)).max(0.25);

    // Cart: rare and noisy (σ = 0.9 in log space).
    let cart_rate = 0.08 + 0.01 * d[dim::MEMBERSHIP] as f64;
    let cart = (click * cart_rate * lognormal(rng, 0.0, 0.9)).max(0.1);

    [impression, click, favorite, cart]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimensions::sample_dims;
    use crate::temporal::day_context;
    use flashp_storage::Timestamp;
    use rand::SeedableRng;

    fn ctx() -> DayContext {
        day_context(10, Timestamp::from_yyyymmdd(20200111).unwrap(), 1.0)
    }

    #[test]
    fn measures_are_positive() {
        let mut rng = StdRng::seed_from_u64(0);
        let ctx = ctx();
        for _ in 0..5000 {
            let dims = sample_dims(&mut rng);
            let m = sample_measures(&mut rng, &dims, &ctx);
            assert!(m.iter().all(|v| *v > 0.0 && v.is_finite()), "{m:?}");
        }
    }

    #[test]
    fn funnel_ordering_holds_on_average() {
        let mut rng = StdRng::seed_from_u64(1);
        let ctx = ctx();
        let mut sums = [0.0f64; 4];
        for _ in 0..20_000 {
            let dims = sample_dims(&mut rng);
            let m = sample_measures(&mut rng, &dims, &ctx);
            for (s, v) in sums.iter_mut().zip(m) {
                *s += v;
            }
        }
        assert!(sums[0] > sums[1], "impressions must exceed clicks");
        assert!(sums[1] > sums[2], "clicks must exceed favorites");
        assert!(sums[2] > sums[3], "favorites must exceed carts");
    }

    #[test]
    fn impressions_are_heavy_tailed() {
        let mut rng = StdRng::seed_from_u64(2);
        let ctx = ctx();
        let mut values: Vec<f64> = (0..20_000)
            .map(|_| {
                let dims = sample_dims(&mut rng);
                sample_measures(&mut rng, &dims, &ctx)[0]
            })
            .collect();
        values.sort_by(f64::total_cmp);
        let total: f64 = values.iter().sum();
        let top1: f64 = values[values.len() - values.len() / 100..].iter().sum();
        // Top 1% of rows should carry a disproportionate share (> 5%).
        assert!(top1 / total > 0.05, "top-1% share = {}", top1 / total);
    }

    #[test]
    fn ctr_depends_jointly_on_age_and_gender() {
        // This joint dependence is what biases PIM.
        let mut rng = StdRng::seed_from_u64(3);
        let ctx = ctx();
        let mut ratios = std::collections::HashMap::new();
        for _ in 0..40_000 {
            let dims = sample_dims(&mut rng);
            let m = sample_measures(&mut rng, &dims, &ctx);
            let key = (dims.0[dim::AGE] < 35, dims.0[dim::GENDER]);
            let e = ratios.entry(key).or_insert((0.0, 0.0));
            e.0 += m[1];
            e.1 += m[0];
        }
        let ctr = |k: (bool, i64)| {
            let (c, i) = ratios[&k];
            c / i
        };
        assert!(ctr((true, 0)) > ctr((true, 1)));
        assert!(ctr((true, 1)) > ctr((false, 1)));
    }

    #[test]
    fn deterministic_given_seed() {
        let ctx = ctx();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let d1 = sample_dims(&mut r1);
        let d2 = sample_dims(&mut r2);
        assert_eq!(sample_measures(&mut r1, &d1, &ctx), sample_measures(&mut r2, &d2, &ctx));
    }
}
