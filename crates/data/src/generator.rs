//! Assembling the synthetic dataset into a [`TimeSeriesTable`].
//!
//! Generation is deterministic given the config: each day derives its own
//! RNG from `(seed, day)`, so the result is identical regardless of how
//! days are parallelized.

use crate::config::DatasetConfig;
use crate::dimensions::{
    build_schema, city_name, sample_dims, CHANNELS, DEVICES, GENDERS, NUM_CITIES, OSES,
};
use crate::error::DataError;
use crate::measures::sample_measures;
use crate::temporal::day_context;
use flashp_storage::parallel::{default_threads, parallel_map};
use flashp_storage::{Partition, PartitionBuilder, TimeSeriesTable, Timestamp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: the table plus the config that produced it.
#[derive(Debug)]
pub struct Dataset {
    pub table: TimeSeriesTable,
    pub config: DatasetConfig,
}

impl Dataset {
    /// First timestamp of the dataset.
    pub fn start(&self) -> Timestamp {
        Timestamp::from_yyyymmdd(self.config.start_date).expect("validated at generation")
    }

    /// Last timestamp of the dataset.
    pub fn end(&self) -> Timestamp {
        self.start() + (self.config.num_days as i64 - 1)
    }
}

/// Generate the full dataset. Parallel across days; deterministic given
/// `config.seed`.
pub fn generate_dataset(config: &DatasetConfig) -> Result<Dataset, DataError> {
    config.validate()?;
    let schema = build_schema();
    let mut table = TimeSeriesTable::new(schema.clone());

    // Pre-intern every categorical value so dictionary codes match the
    // raw codes produced by `sample_dims` (vocab order = code order).
    for g in GENDERS {
        table.intern(crate::dimensions::dim::GENDER, g)?;
    }
    for c in 0..NUM_CITIES {
        table.intern(crate::dimensions::dim::CITY, &city_name(c))?;
    }
    for d in DEVICES {
        table.intern(crate::dimensions::dim::DEVICE, d)?;
    }
    for o in OSES {
        table.intern(crate::dimensions::dim::OS, o)?;
    }
    for ch in CHANNELS {
        table.intern(crate::dimensions::dim::CHANNEL, ch)?;
    }

    let start = Timestamp::from_yyyymmdd(config.start_date)?;
    let days: Vec<usize> = (0..config.num_days).collect();
    let partitions: Vec<Partition> =
        parallel_map(&days, default_threads(), |&day| generate_day(config, &schema, start, day));
    for (day, partition) in partitions.into_iter().enumerate() {
        table.insert_partition(start + day as i64, partition);
    }
    Ok(Dataset { table, config: clone_config(config) })
}

fn clone_config(c: &DatasetConfig) -> DatasetConfig {
    DatasetConfig {
        rows_per_day: c.rows_per_day,
        num_days: c.num_days,
        start_date: c.start_date,
        seed: c.seed,
        table_name: c.table_name.clone(),
    }
}

fn generate_day(
    config: &DatasetConfig,
    schema: &flashp_storage::SchemaRef,
    start: Timestamp,
    day: usize,
) -> Partition {
    let mut rng =
        StdRng::seed_from_u64(config.seed ^ (day as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let t = start + day as i64;
    // Day-level multiplicative shock (σ = 0.05 in log space) plus row-count
    // variation by weekday.
    let shock = (0.05 * box_muller(&mut rng)).exp();
    let ctx = day_context(day, t, shock);
    let weekday_factor = crate::temporal::WEEKLY[t.weekday() as usize];
    let rows = ((config.rows_per_day as f64) * weekday_factor).round().max(1.0) as usize;

    let mut builder = PartitionBuilder::with_capacity(schema, rows);
    for _ in 0..rows {
        let dims = sample_dims(&mut rng);
        let measures = sample_measures(&mut rng, &dims, &ctx);
        builder
            .push_raw_row(&dims.0, &measures)
            .expect("generator produces schema-conformant rows");
    }
    builder.finish()
}

fn box_muller(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{AggFunc, Predicate, ScanOptions};

    fn tiny() -> Dataset {
        generate_dataset(&DatasetConfig::new(300, 21, 42)).unwrap()
    }

    #[test]
    fn generates_requested_shape() {
        let ds = tiny();
        assert_eq!(ds.table.num_partitions(), 21);
        assert_eq!(ds.start().to_yyyymmdd(), 20200101);
        assert_eq!(ds.end() - ds.start(), 20);
        // Row counts vary with weekday but stay near the nominal value.
        for (_, p) in ds.table.partitions() {
            let n = p.num_rows() as f64;
            assert!(n > 0.7 * 300.0 && n < 1.3 * 300.0, "rows = {n}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny();
        let b = tiny();
        let pred = a.table.compile_predicate(&Predicate::True).unwrap();
        let sa = flashp_storage::aggregate_range(
            &a.table,
            0,
            &pred,
            AggFunc::Sum,
            a.start(),
            a.end(),
            ScanOptions { threads: 1, ..Default::default() },
        )
        .unwrap();
        let pred_b = b.table.compile_predicate(&Predicate::True).unwrap();
        let sb = flashp_storage::aggregate_range(
            &b.table,
            0,
            &pred_b,
            AggFunc::Sum,
            b.start(),
            b.end(),
            ScanOptions { threads: 4, ..Default::default() },
        )
        .unwrap();
        assert_eq!(sa, sb, "generation must not depend on threading");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_dataset(&DatasetConfig::new(100, 3, 1)).unwrap();
        let b = generate_dataset(&DatasetConfig::new(100, 3, 2)).unwrap();
        let pa = a.table.partition(a.start()).unwrap().measure(0)[0];
        let pb = b.table.partition(b.start()).unwrap().measure(0)[0];
        assert_ne!(pa, pb);
    }

    #[test]
    fn series_has_weekly_structure() {
        let ds = generate_dataset(&DatasetConfig::new(500, 28, 7)).unwrap();
        let pred = ds.table.compile_predicate(&Predicate::True).unwrap();
        let series = flashp_storage::aggregate_range(
            &ds.table,
            0,
            &pred,
            AggFunc::Sum,
            ds.start(),
            ds.end(),
            ScanOptions::default(),
        )
        .unwrap();
        // Wednesdays should out-pull Sundays on average.
        let mut wed = (0.0, 0);
        let mut sun = (0.0, 0);
        for (t, v) in &series {
            match t.weekday() {
                2 => {
                    wed.0 += v;
                    wed.1 += 1;
                }
                6 => {
                    sun.0 += v;
                    sun.1 += 1;
                }
                _ => {}
            }
        }
        let wed_avg = wed.0 / wed.1 as f64;
        let sun_avg = sun.0 / sun.1 as f64;
        assert!(wed_avg > sun_avg, "wed {wed_avg} vs sun {sun_avg}");
    }

    #[test]
    fn dictionary_codes_match_vocab_order() {
        let ds = tiny();
        let dicts = ds.table.dictionaries();
        assert_eq!(dicts[crate::dimensions::dim::GENDER].as_ref().unwrap().lookup("F"), Some(0));
        assert_eq!(dicts[crate::dimensions::dim::GENDER].as_ref().unwrap().lookup("M"), Some(1));
        assert_eq!(
            dicts[crate::dimensions::dim::DEVICE].as_ref().unwrap().lookup("mobile"),
            Some(0)
        );
        assert_eq!(
            dicts[crate::dimensions::dim::CITY].as_ref().unwrap().lookup("city_00"),
            Some(0)
        );
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(generate_dataset(&DatasetConfig::new(0, 5, 0)).is_err());
    }
}
