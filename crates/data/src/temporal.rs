//! Day-level temporal structure: trend, weekly and monthly seasonality,
//! day-level noise, and per-segment modulation. These multipliers shape
//! the per-day aggregate series `M_t` that the forecasting models must
//! learn.

use flashp_storage::Timestamp;

/// Weekly multiplier (Monday = 0 … Sunday = 6): weekend traffic dips,
/// mid-week peaks — a typical ads pattern.
pub const WEEKLY: [f64; 7] = [1.05, 1.1, 1.12, 1.08, 1.0, 0.82, 0.78];

/// Day-level context shared by all rows of one partition.
#[derive(Debug, Clone, Copy)]
pub struct DayContext {
    /// Day index since the dataset start (0-based).
    pub day_index: usize,
    /// The timestamp itself.
    pub t: Timestamp,
    /// Combined level multiplier (trend × weekly × monthly × shock).
    pub level: f64,
    /// Weekly component alone (for per-segment amplitude modulation).
    pub weekly: f64,
}

/// Smooth day-level multiplier for day `d` (0-based) at timestamp `t`.
/// `shock` is a per-day random multiplier drawn by the generator.
pub fn day_context(day_index: usize, t: Timestamp, shock: f64) -> DayContext {
    let d = day_index as f64;
    // Mild upward trend ≈ +20% over 200 days.
    let trend = 1.0 + 0.001 * d;
    let weekly = WEEKLY[t.weekday() as usize];
    // Monthly promotion cycle.
    let monthly = 1.0 + 0.08 * (2.0 * std::f64::consts::PI * d / 30.0).sin();
    DayContext { day_index, t, level: trend * weekly * monthly * shock, weekly }
}

/// Per-segment modulation: segments (defined by a few dimension values)
/// deviate from the global pattern, so different constraints select
/// genuinely different series. Returns a multiplier applied to the row's
/// activity level.
pub fn segment_modulation(ctx: &DayContext, age: i64, gender: i64, interest: i64) -> f64 {
    // Young users have amplified weekly swings; the deviation from 1.0 is
    // scaled up or down per segment.
    let weekly_dev = ctx.weekly - 1.0;
    let weekly_gain = if age < 30 { 1.6 } else { 0.8 };
    // Some interests trend up over time, others decay.
    let d = ctx.day_index as f64;
    let interest_trend = match interest % 4 {
        0 => 1.0 + 0.0012 * d,
        1 => 1.0 - 0.0006 * d,
        _ => 1.0,
    };
    // Gender-specific monthly phase shift.
    let phase = if gender == 0 { 0.0 } else { std::f64::consts::PI / 2.0 };
    let monthly = 1.0 + 0.05 * (2.0 * std::f64::consts::PI * d / 30.0 + phase).sin();
    (1.0 + weekly_dev * weekly_gain) * interest_trend.max(0.2) * monthly
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: i64) -> Timestamp {
        Timestamp::from_yyyymmdd(v).unwrap()
    }

    #[test]
    fn weekend_is_lower_than_midweek() {
        // 2020-03-04 was a Wednesday, 2020-03-08 a Sunday.
        let wed = day_context(0, ts(20200304), 1.0);
        let sun = day_context(0, ts(20200308), 1.0);
        assert!(wed.level > sun.level);
    }

    #[test]
    fn trend_grows_over_time() {
        let t = ts(20200304);
        let early = day_context(0, t, 1.0);
        let late = day_context(180, t, 1.0);
        assert!(late.level > early.level);
    }

    #[test]
    fn shock_scales_linearly() {
        let t = ts(20200304);
        let base = day_context(10, t, 1.0);
        let doubled = day_context(10, t, 2.0);
        assert!((doubled.level / base.level - 2.0).abs() < 1e-12);
    }

    #[test]
    fn segments_differ() {
        let ctx = day_context(50, ts(20200304), 1.0);
        let young = segment_modulation(&ctx, 22, 0, 0);
        let old = segment_modulation(&ctx, 60, 0, 0);
        assert_ne!(young, old);
        let f = segment_modulation(&ctx, 40, 0, 2);
        let m = segment_modulation(&ctx, 40, 1, 2);
        assert_ne!(f, m);
    }

    #[test]
    fn modulation_stays_positive() {
        for day in [0usize, 50, 199] {
            let ctx = day_context(day, ts(20200304), 1.0);
            for age in [18, 30, 70] {
                for interest in 0..4 {
                    assert!(segment_modulation(&ctx, age, 0, interest) > 0.0);
                }
            }
        }
    }
}
