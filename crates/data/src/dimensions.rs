//! The 11-dimension user-profile schema and correlated dimension
//! sampling.
//!
//! Cardinalities and skew are chosen to resemble an ads-profile table:
//! some low-cardinality categoricals (gender, device), some mid-size
//! (city, interest), some ordinal (age, membership). Several dimensions
//! are *correlated* — OS follows device, platform tier follows city,
//! intent follows interest — deliberately violating the independence that
//! the PIM baseline assumes.

use flashp_storage::{DataType, Schema, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;

/// Number of dimensions (as in the paper's dataset).
pub const NUM_DIMENSIONS: usize = 11;

/// Dimension column indices, in schema order.
pub mod dim {
    pub const AGE: usize = 0;
    pub const GENDER: usize = 1;
    pub const CITY: usize = 2;
    pub const DEVICE: usize = 3;
    pub const OS: usize = 4;
    pub const INTEREST: usize = 5;
    pub const INTENT: usize = 6;
    pub const MEMBERSHIP: usize = 7;
    pub const CHANNEL: usize = 8;
    pub const DAYPART: usize = 9;
    pub const TIER: usize = 10;
}

/// Categorical vocabularies (interned into the table dictionary in this
/// order, so code `i` = `VALUES[i]`).
pub const GENDERS: [&str; 2] = ["F", "M"];
pub const DEVICES: [&str; 3] = ["mobile", "pc", "tablet"];
pub const OSES: [&str; 4] = ["android", "ios", "windows", "mac"];
pub const CHANNELS: [&str; 4] = ["search", "feed", "social", "direct"];

/// Number of distinct cities (categorical `city_00` … ).
pub const NUM_CITIES: usize = 64;
/// Number of interest tags.
pub const NUM_INTERESTS: u8 = 32;
/// Number of intent tags.
pub const NUM_INTENTS: u8 = 16;
/// Membership levels 0..5.
pub const NUM_MEMBERSHIP: u8 = 5;
/// Dayparts 0..6.
pub const NUM_DAYPARTS: u8 = 6;
/// Platform tiers 1..=4.
pub const NUM_TIERS: u8 = 4;

/// City name for code `c`.
pub fn city_name(c: usize) -> String {
    format!("city_{c:02}")
}

/// Build the dataset schema: 11 dimensions + 4 measures.
pub fn build_schema() -> SchemaRef {
    Schema::from_names(
        &[
            ("age", DataType::UInt8),
            ("gender", DataType::Categorical),
            ("city", DataType::Categorical),
            ("device", DataType::Categorical),
            ("os", DataType::Categorical),
            ("interest", DataType::UInt8),
            ("intent", DataType::UInt8),
            ("membership", DataType::UInt8),
            ("channel", DataType::Categorical),
            ("daypart", DataType::UInt8),
            ("tier", DataType::UInt8),
        ],
        &["Impression", "Click", "Favorite", "Cart"],
    )
    .expect("static schema is valid")
    .into_shared()
}

/// Measure column indices.
pub mod measure {
    pub const IMPRESSION: usize = 0;
    pub const CLICK: usize = 1;
    pub const FAVORITE: usize = 2;
    pub const CART: usize = 3;
    pub const NAMES: [&str; 4] = ["Impression", "Click", "Favorite", "Cart"];
}

/// One row's dimension values as raw codes (dictionary codes for
/// categorical columns), in schema order.
#[derive(Debug, Clone)]
pub struct DimValues(pub [i64; NUM_DIMENSIONS]);

/// Draw a skewed categorical index in `0..n`: mass concentrated on small
/// indices (rank-based power-law, exponent ~1).
fn zipf_like(rng: &mut StdRng, n: usize) -> usize {
    // Inverse-CDF for p(k) ∝ 1/(k+1), cheaply approximated: u^2 biases
    // toward 0; spread across n.
    let u: f64 = rng.gen();
    let v = u * u;
    ((v * n as f64) as usize).min(n - 1)
}

/// Sample one user's dimensions with the documented correlations.
pub fn sample_dims(rng: &mut StdRng) -> DimValues {
    // Age: mixture of young (20s) and broad adult range.
    let age: i64 =
        if rng.gen::<f64>() < 0.55 { rng.gen_range(18..=34) } else { rng.gen_range(35..=70) };
    // Gender skews slightly female for shopping traffic.
    let gender = i64::from(rng.gen::<f64>() >= 0.54); // 0 = F, 1 = M
                                                      // Cities are heavily skewed (big cities dominate).
    let city = zipf_like(rng, NUM_CITIES) as i64;
    // Device: mobile-heavy; young users even more so.
    let mobile_p = if age < 35 { 0.85 } else { 0.6 };
    let device: i64 = {
        let u: f64 = rng.gen();
        if u < mobile_p {
            0 // mobile
        } else if u < mobile_p + 0.7 * (1.0 - mobile_p) {
            1 // pc
        } else {
            2 // tablet
        }
    };
    // OS correlated with device: mobile → android/ios, pc → windows/mac.
    let os: i64 = match device {
        0 | 2 => i64::from(rng.gen::<f64>() >= 0.6), // android 60% / ios
        _ => 2 + i64::from(rng.gen::<f64>() >= 0.75), // windows 75% / mac
    };
    // Interest tags skewed; intent correlated with interest.
    let interest = zipf_like(rng, NUM_INTERESTS as usize) as i64;
    let intent: i64 = if rng.gen::<f64>() < 0.6 {
        (interest / 2).min(i64::from(NUM_INTENTS) - 1)
    } else {
        rng.gen_range(0..i64::from(NUM_INTENTS))
    };
    // Membership: mostly low levels.
    let membership = zipf_like(rng, NUM_MEMBERSHIP as usize) as i64;
    // Channel skewed toward feed/search.
    let channel: i64 = {
        let u: f64 = rng.gen();
        if u < 0.4 {
            1 // feed
        } else if u < 0.75 {
            0 // search
        } else if u < 0.9 {
            2 // social
        } else {
            3 // direct
        }
    };
    let daypart = rng.gen_range(0..i64::from(NUM_DAYPARTS));
    // Tier correlated with city: big cities are tier 1-2.
    let tier: i64 = 1 + (city / (NUM_CITIES as i64 / i64::from(NUM_TIERS))).min(3);
    DimValues([age, gender, city, device, os, interest, intent, membership, channel, daypart, tier])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn schema_matches_paper_shape() {
        let s = build_schema();
        assert_eq!(s.num_dimensions(), NUM_DIMENSIONS);
        assert_eq!(s.num_measures(), 4);
        assert_eq!(s.measure_index("Impression").unwrap(), measure::IMPRESSION);
        assert_eq!(s.dimension_index("tier").unwrap(), dim::TIER);
    }

    #[test]
    fn dims_respect_ranges() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5000 {
            let d = sample_dims(&mut rng).0;
            assert!((18..=70).contains(&d[dim::AGE]));
            assert!((0..2).contains(&d[dim::GENDER]));
            assert!((0..NUM_CITIES as i64).contains(&d[dim::CITY]));
            assert!((0..3).contains(&d[dim::DEVICE]));
            assert!((0..4).contains(&d[dim::OS]));
            assert!((0..i64::from(NUM_INTERESTS)).contains(&d[dim::INTEREST]));
            assert!((0..i64::from(NUM_INTENTS)).contains(&d[dim::INTENT]));
            assert!((0..i64::from(NUM_MEMBERSHIP)).contains(&d[dim::MEMBERSHIP]));
            assert!((0..4).contains(&d[dim::CHANNEL]));
            assert!((0..i64::from(NUM_DAYPARTS)).contains(&d[dim::DAYPART]));
            assert!((1..=i64::from(NUM_TIERS)).contains(&d[dim::TIER]));
        }
    }

    #[test]
    fn device_os_correlation_holds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let d = sample_dims(&mut rng).0;
            match d[dim::DEVICE] {
                0 | 2 => assert!(d[dim::OS] <= 1, "mobile/tablet must run android/ios"),
                _ => assert!(d[dim::OS] >= 2, "pc must run windows/mac"),
            }
        }
    }

    #[test]
    fn cities_are_skewed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; NUM_CITIES];
        for _ in 0..20_000 {
            counts[sample_dims(&mut rng).0[dim::CITY] as usize] += 1;
        }
        // Top city must dominate the median city by a wide margin.
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        assert!(counts.iter().max().unwrap() > &(sorted[NUM_CITIES / 2] * 4));
    }

    #[test]
    fn tier_follows_city() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let d = sample_dims(&mut rng).0;
            let expected = 1 + (d[dim::CITY] / (NUM_CITIES as i64 / 4)).min(3);
            assert_eq!(d[dim::TIER], expected);
        }
    }
}
