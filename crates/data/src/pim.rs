//! PIM — the Partwise Independence Model baseline of Agarwal et al. \[7\],
//! as evaluated in the paper's Table 1.
//!
//! PIM precomputes, per timestamp, the total of each measure and its
//! *marginal* totals per (dimension, value). An online constraint that is
//! a conjunction of single-dimension parts `C = C₁ ∧ … ∧ C_k` is then
//! estimated under a partwise-independence assumption:
//!
//! ```text
//! M̂(C) = total · Π_j ( marginal(C_j) / total )
//! ```
//!
//! The model is tiny and fast but *biased* whenever the measure
//! distribution correlates across dimensions (which it does, by
//! construction, in our synthetic data and in any real ads data) — this is
//! why the paper finds uniform sampling beats the Bayesian variants of
//! \[7\] and why FlashP's samplers beat uniform.

use crate::error::DataError;
use flashp_storage::{CompiledPredicate, TimeSeriesTable, Timestamp};
use std::collections::{BTreeMap, HashMap};

/// Per-day marginal statistics.
#[derive(Debug, Default)]
struct DayStats {
    /// Total of each measure over the whole partition.
    totals: Vec<f64>,
    /// `marginals[measure][dimension][value] = Σ measure over rows with
    /// that dimension value`.
    marginals: Vec<Vec<HashMap<i64, f64>>>,
}

/// The PIM estimator, built offline over a table.
#[derive(Debug)]
pub struct PimModel {
    days: BTreeMap<Timestamp, DayStats>,
}

impl PimModel {
    /// Precompute totals and per-dimension marginals for every partition.
    pub fn build(table: &TimeSeriesTable) -> Self {
        let num_measures = table.schema().num_measures();
        let num_dims = table.schema().num_dimensions();
        let mut days = BTreeMap::new();
        for (t, partition) in table.partitions() {
            let mut stats = DayStats {
                totals: vec![0.0; num_measures],
                marginals: vec![vec![HashMap::new(); num_dims]; num_measures],
            };
            for m in 0..num_measures {
                let col = partition.measure(m);
                stats.totals[m] = col.iter().sum();
                for d in 0..num_dims {
                    let dim_col = partition.dim(d);
                    let marg = &mut stats.marginals[m][d];
                    for (i, &v) in col.iter().enumerate() {
                        *marg.entry(dim_col.get_i64(i)).or_insert(0.0) += v;
                    }
                }
            }
            days.insert(t, stats);
        }
        PimModel { days }
    }

    /// Estimate `SUM(measure)` under `pred` at time `t`.
    ///
    /// `pred` must decompose into a top-level conjunction of parts, each
    /// referencing a single dimension (the class PIM supports; arbitrary
    /// boolean structure within a part is fine).
    pub fn estimate(
        &self,
        t: Timestamp,
        measure: usize,
        pred: &CompiledPredicate,
    ) -> Result<f64, DataError> {
        let stats = self
            .days
            .get(&t)
            .ok_or(DataError::Storage(flashp_storage::StorageError::NoSuchPartition(t.0)))?;
        if measure >= stats.totals.len() {
            return Err(DataError::PimUndecomposable(format!("measure {measure} out of range")));
        }
        let total = stats.totals[measure];
        if total == 0.0 {
            return Ok(0.0);
        }
        // Conjuncts touching the same dimension form ONE part (e.g.
        // `age >= 20 AND age <= 30` is a single range condition) —
        // multiplying them separately would double-count the dimension.
        let parts = decompose(pred)?;
        let mut estimate = total;
        for (dim, conjuncts) in parts {
            let marg = &stats.marginals[measure][dim];
            let part_sum: f64 = marg
                .iter()
                .filter(|(value, _)| conjuncts.iter().all(|c| eval_scalar(c, dim, **value)))
                .map(|(_, sum)| sum)
                .sum();
            estimate *= part_sum / total;
        }
        Ok(estimate)
    }

    /// Estimate the whole training series `[start, end]`.
    pub fn estimate_series(
        &self,
        start: Timestamp,
        end: Timestamp,
        measure: usize,
        pred: &CompiledPredicate,
    ) -> Result<Vec<(Timestamp, f64)>, DataError> {
        let mut out = Vec::new();
        for (t, _) in self.days.range(start..=end) {
            out.push((*t, self.estimate(*t, measure, pred)?));
        }
        Ok(out)
    }

    /// Approximate memory footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.days
            .values()
            .map(|s| {
                s.totals.len() * 8
                    + s.marginals
                        .iter()
                        .flat_map(|per_dim| per_dim.iter())
                        .map(|m| m.len() * 16)
                        .sum::<usize>()
            })
            .sum()
    }
}

/// Decompose into per-dimension groups of conjuncts, merging conjuncts
/// that touch the same dimension into one part.
fn decompose(pred: &CompiledPredicate) -> Result<Vec<(usize, Vec<&CompiledPredicate>)>, DataError> {
    let conjuncts: Vec<&CompiledPredicate> = match pred {
        CompiledPredicate::And(children) => children.iter().collect(),
        other => vec![other],
    };
    let mut parts: Vec<(usize, Vec<&CompiledPredicate>)> = Vec::new();
    fn push<'a>(
        parts: &mut Vec<(usize, Vec<&'a CompiledPredicate>)>,
        dim: usize,
        c: &'a CompiledPredicate,
    ) {
        match parts.iter_mut().find(|(d, _)| *d == dim) {
            Some((_, v)) => v.push(c),
            None => parts.push((dim, vec![c])),
        }
    }
    for c in conjuncts {
        match c {
            CompiledPredicate::Const(true) => {}
            CompiledPredicate::Const(false) => {
                // Impossible constraint: a part that matches nothing.
                push(&mut parts, 0, c);
            }
            other => {
                let mut dims = Vec::new();
                collect_dims(other, &mut dims);
                dims.sort_unstable();
                dims.dedup();
                match dims.len() {
                    1 => push(&mut parts, dims[0], other),
                    0 => {}
                    _ => {
                        return Err(DataError::PimUndecomposable(format!(
                            "conjunct touches {} dimensions",
                            dims.len()
                        )))
                    }
                }
            }
        }
    }
    Ok(parts)
}

fn collect_dims(pred: &CompiledPredicate, out: &mut Vec<usize>) {
    match pred {
        CompiledPredicate::Cmp { dim, .. }
        | CompiledPredicate::CmpF64 { dim, .. }
        | CompiledPredicate::InSet { dim, .. } => out.push(*dim),
        CompiledPredicate::And(children) | CompiledPredicate::Or(children) => {
            for c in children {
                collect_dims(c, out);
            }
        }
        CompiledPredicate::Not(child) => collect_dims(child, out),
        CompiledPredicate::Const(_) => {}
    }
}

/// Evaluate a single-dimension predicate against one scalar value.
fn eval_scalar(pred: &CompiledPredicate, dim: usize, value: i64) -> bool {
    match pred {
        CompiledPredicate::Const(b) => *b,
        CompiledPredicate::Cmp { dim: d, op, value: rhs } => {
            debug_assert_eq!(*d, dim);
            match op {
                flashp_storage::CmpOp::Eq => value == *rhs,
                flashp_storage::CmpOp::Ne => value != *rhs,
                flashp_storage::CmpOp::Lt => value < *rhs,
                flashp_storage::CmpOp::Le => value <= *rhs,
                flashp_storage::CmpOp::Gt => value > *rhs,
                flashp_storage::CmpOp::Ge => value >= *rhs,
            }
        }
        // Float64 marginal keys are the value's IEEE bits (`get_i64` on a
        // Float64 column); recover the f64 before comparing.
        CompiledPredicate::CmpF64 { dim: d, op, value: rhs } => {
            debug_assert_eq!(*d, dim);
            op.apply_f64(f64::from_bits(value as u64), *rhs)
        }
        CompiledPredicate::InSet { values, .. } => values.binary_search(&value).is_ok(),
        CompiledPredicate::And(children) => children.iter().all(|c| eval_scalar(c, dim, value)),
        CompiledPredicate::Or(children) => children.iter().any(|c| eval_scalar(c, dim, value)),
        CompiledPredicate::Not(child) => !eval_scalar(child, dim, value),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;
    use crate::generator::generate_dataset;
    use flashp_storage::{AggFunc, CmpOp, Predicate};

    fn dataset() -> crate::generator::Dataset {
        generate_dataset(&DatasetConfig::new(3_000, 5, 21)).unwrap()
    }

    #[test]
    fn single_dimension_constraint_is_exact() {
        // With one part, PIM reduces to the exact marginal — no
        // independence assumption is invoked.
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        let pred = ds.table.compile_predicate(&Predicate::eq("gender", "F")).unwrap();
        let t = ds.start();
        let exact = ds.table.aggregate_at(t, 0, &pred, AggFunc::Sum).unwrap();
        let est = pim.estimate(t, 0, &pred).unwrap();
        assert!((est - exact).abs() / exact < 1e-9, "est {est} vs exact {exact}");
    }

    #[test]
    fn independent_dimensions_are_nearly_exact() {
        // daypart is generated independently of gender, so the product
        // rule should be close to exact (up to sampling noise in the data).
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        let pred = Predicate::eq("gender", "F").and(Predicate::cmp("daypart", CmpOp::Le, 2));
        let compiled = ds.table.compile_predicate(&pred).unwrap();
        let t = ds.start();
        let exact = ds.table.aggregate_at(t, 0, &compiled, AggFunc::Sum).unwrap();
        let est = pim.estimate(t, 0, &compiled).unwrap();
        assert!(
            (est - exact).abs() / exact < 0.15,
            "est {est} vs exact {exact} should be close for independent dims"
        );
    }

    #[test]
    fn correlated_dimensions_show_bias() {
        // device and os are strongly correlated: P(os=android | device=pc)
        // = 0, but PIM multiplies marginals and predicts a large value.
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        let pred = Predicate::eq("device", "pc").and(Predicate::eq("os", "android"));
        let compiled = ds.table.compile_predicate(&pred).unwrap();
        let t = ds.start();
        let exact = ds.table.aggregate_at(t, 0, &compiled, AggFunc::Sum).unwrap();
        let est = pim.estimate(t, 0, &compiled).unwrap();
        assert_eq!(exact, 0.0, "no pc runs android in this world");
        assert!(est > 0.0, "PIM must overestimate due to the independence assumption");
    }

    #[test]
    fn series_estimation_covers_range() {
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        let pred = ds.table.compile_predicate(&Predicate::eq("gender", "M")).unwrap();
        let series = pim.estimate_series(ds.start(), ds.end(), 1, &pred).unwrap();
        assert_eq!(series.len(), 5);
        assert!(series.iter().all(|(_, v)| *v > 0.0));
    }

    #[test]
    fn range_conjuncts_merge_into_one_part() {
        // age >= 20 AND age <= 30 must be one part: with a single
        // dimension involved, PIM reduces to the exact marginal sum.
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        let pred = Predicate::cmp("age", CmpOp::Ge, 20).and(Predicate::cmp("age", CmpOp::Le, 30));
        let compiled = ds.table.compile_predicate(&pred).unwrap();
        let t = ds.start();
        let exact = ds.table.aggregate_at(t, 0, &compiled, AggFunc::Sum).unwrap();
        let est = pim.estimate(t, 0, &compiled).unwrap();
        assert!(
            (est - exact).abs() / exact < 1e-9,
            "single-dimension range must be exact: est {est} vs {exact}"
        );
    }

    #[test]
    fn cross_dimension_part_rejected() {
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        // (gender = F OR device = pc) cannot be decomposed per dimension.
        let pred = Predicate::Or(vec![Predicate::eq("gender", "F"), Predicate::eq("device", "pc")]);
        let compiled = ds.table.compile_predicate(&pred).unwrap();
        assert!(pim.estimate(ds.start(), 0, &compiled).is_err());
    }

    #[test]
    fn missing_day_errors() {
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        let pred = ds.table.compile_predicate(&Predicate::True).unwrap();
        assert!(pim.estimate(ds.end() + 100, 0, &pred).is_err());
    }

    #[test]
    fn true_predicate_returns_total() {
        let ds = dataset();
        let pim = PimModel::build(&ds.table);
        let pred = ds.table.compile_predicate(&Predicate::True).unwrap();
        let t = ds.start();
        let exact = ds.table.aggregate_at(t, 2, &pred, AggFunc::Sum).unwrap();
        let est = pim.estimate(t, 2, &pred).unwrap();
        assert!((est - exact).abs() < 1e-6);
        assert!(pim.byte_size() > 0);
    }
}
