//! Derivative-free minimization (Nelder–Mead) used to refine ARMA and ETS
//! parameter estimates. Objective functions here are cheap (one CSS pass
//! over ≤ a few hundred points), so a robust simplex search beats the
//! complexity of implementing analytic gradients for every model.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone, Copy)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Convergence tolerance on the simplex's objective spread.
    pub f_tol: f64,
    /// Initial simplex step per coordinate.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions { max_evals: 2000, f_tol: 1e-10, initial_step: 0.1 }
    }
}

/// Result of a minimization.
#[derive(Debug, Clone)]
pub struct OptimResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Objective evaluations consumed.
    pub evals: usize,
    /// True if the f-spread tolerance was reached before `max_evals`.
    pub converged: bool,
}

/// Minimize `f` starting from `x0` with the Nelder–Mead simplex method
/// (standard coefficients: reflection 1, expansion 2, contraction ½,
/// shrink ½). Non-finite objective values are treated as +∞, which lets
/// callers encode hard constraints by returning `f64::INFINITY`.
pub fn nelder_mead(
    f: impl Fn(&[f64]) -> f64,
    x0: &[f64],
    options: NelderMeadOptions,
) -> OptimResult {
    let n = x0.len();
    let eval = |x: &[f64]| {
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };
    if n == 0 {
        let fx = eval(x0);
        return OptimResult { x: x0.to_vec(), fx, evals: 1, converged: true };
    }

    // Initial simplex: x0 plus a perturbation along each axis.
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(x0.to_vec());
    for i in 0..n {
        let mut p = x0.to_vec();
        let step = if p[i].abs() > 1e-8 {
            options.initial_step * p[i].abs()
        } else {
            options.initial_step
        };
        p[i] += step;
        simplex.push(p);
    }
    let mut fvals: Vec<f64> = simplex.iter().map(|p| eval(p)).collect();
    let mut evals = simplex.len();

    while evals < options.max_evals {
        // Order simplex by objective.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| fvals[a].total_cmp(&fvals[b]));
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        let spread = fvals[worst] - fvals[best];
        if spread.abs() < options.f_tol && fvals[best].is_finite() {
            return OptimResult {
                x: simplex[best].clone(),
                fx: fvals[best],
                evals,
                converged: true,
            };
        }

        // Centroid of all but the worst point.
        let mut centroid = vec![0.0; n];
        for (i, p) in simplex.iter().enumerate() {
            if i == worst {
                continue;
            }
            for (c, v) in centroid.iter_mut().zip(p) {
                *c += v / n as f64;
            }
        }

        let point_along = |coef: f64| -> Vec<f64> {
            centroid.iter().zip(&simplex[worst]).map(|(c, w)| c + coef * (c - w)).collect()
        };

        // Reflection.
        let xr = point_along(1.0);
        let fr = eval(&xr);
        evals += 1;
        if fr < fvals[best] {
            // Expansion.
            let xe = point_along(2.0);
            let fe = eval(&xe);
            evals += 1;
            if fe < fr {
                simplex[worst] = xe;
                fvals[worst] = fe;
            } else {
                simplex[worst] = xr;
                fvals[worst] = fr;
            }
            continue;
        }
        if fr < fvals[second_worst] {
            simplex[worst] = xr;
            fvals[worst] = fr;
            continue;
        }
        // Contraction (outside if reflected point improved on worst).
        let xc = if fr < fvals[worst] { point_along(0.5) } else { point_along(-0.5) };
        let fc = eval(&xc);
        evals += 1;
        if fc < fvals[worst].min(fr) {
            simplex[worst] = xc;
            fvals[worst] = fc;
            continue;
        }
        // Shrink toward the best point.
        let best_point = simplex[best].clone();
        for (i, p) in simplex.iter_mut().enumerate() {
            if i == best {
                continue;
            }
            for (v, b) in p.iter_mut().zip(&best_point) {
                *v = b + 0.5 * (*v - b);
            }
            fvals[i] = eval(p);
            evals += 1;
        }
    }

    let mut best = 0;
    for i in 1..=n {
        if fvals[i] < fvals[best] {
            best = i;
        }
    }
    OptimResult { x: simplex[best].clone(), fx: fvals[best], evals, converged: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            NelderMeadOptions::default(),
        );
        assert!(r.converged);
        assert!((r.x[0] - 3.0).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 1.0).abs() < 1e-4, "x1 = {}", r.x[1]);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let rosen = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let r = nelder_mead(
            rosen,
            &[-1.2, 1.0],
            NelderMeadOptions { max_evals: 5000, ..Default::default() },
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3, "x = {:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn respects_infinite_barriers() {
        // Constrain x > 0 with an infinite barrier; minimum of (x-(-2))² on
        // x>0 is at the boundary.
        let r = nelder_mead(
            |x| if x[0] <= 0.0 { f64::INFINITY } else { (x[0] + 2.0).powi(2) },
            &[5.0],
            NelderMeadOptions::default(),
        );
        assert!(r.x[0] > 0.0);
        assert!(r.x[0] < 0.3, "x = {}", r.x[0]);
    }

    #[test]
    fn zero_dimensional_input() {
        let r = nelder_mead(|_| 7.0, &[], NelderMeadOptions::default());
        assert_eq!(r.fx, 7.0);
        assert!(r.converged);
    }

    #[test]
    fn respects_eval_budget() {
        let r = nelder_mead(
            |x| x[0].sin() * x[1].cos(),
            &[0.3, 0.7],
            NelderMeadOptions { max_evals: 50, ..Default::default() },
        );
        assert!(r.evals <= 60); // small overshoot from shrink step allowed
    }
}
