//! Pure autoregressive models fitted by ordinary least squares.
//!
//! `AR(p)` is both a usable forecasting model on its own and the first
//! stage of the Hannan–Rissanen initialization for [`crate::arma`]: a
//! long-order AR fit provides innovation estimates for the moving-average
//! regression.

use crate::error::{check_finite, ForecastError};
use crate::linalg::{least_squares, Matrix};
use crate::model::{
    points_from_std_errs, validate_forecast_args, FitSummary, Forecast, ForecastModel,
};

/// Fit a zero-intercept AR(`order`) model to `series` by OLS.
/// Returns `(coefficients, residuals)`, where `residuals` has the same
/// length as `series` with the first `order` entries set to zero (they are
/// conditioned on, not predicted).
pub fn fit_ar_ols(series: &[f64], order: usize) -> Result<(Vec<f64>, Vec<f64>), ForecastError> {
    let n = series.len();
    if order == 0 {
        return Ok((Vec::new(), series.to_vec()));
    }
    if n < 2 * order + 1 {
        return Err(ForecastError::TooShort { needed: 2 * order + 1, got: n });
    }
    let rows = n - order;
    let x = Matrix::from_fn(rows, order, |r, c| series[order + r - 1 - c]);
    let y: Vec<f64> = series[order..].to_vec();
    let coeffs = least_squares(&x, &y)?;
    let mut resid = vec![0.0; n];
    for t in order..n {
        let mut pred = 0.0;
        for (i, c) in coeffs.iter().enumerate() {
            pred += c * series[t - 1 - i];
        }
        resid[t] = series[t] - pred;
    }
    Ok((coeffs, resid))
}

/// An `AR(p)` forecasting model with intercept, fitted by OLS. This is the
/// simplest member of the model class of Eq. (2) and serves as a fast,
/// dependable fallback when full ARMA optimization is unnecessary.
#[derive(Debug, Clone)]
pub struct ArModel {
    p: usize,
    coeffs: Vec<f64>,
    intercept: f64,
    sigma2: f64,
    history: Vec<f64>,
    fitted: bool,
}

impl ArModel {
    /// New unfitted model of order `p`.
    pub fn new(p: usize) -> Self {
        ArModel {
            p,
            coeffs: Vec::new(),
            intercept: 0.0,
            sigma2: 0.0,
            history: Vec::new(),
            fitted: false,
        }
    }

    /// Fitted AR coefficients (empty before fitting).
    pub fn coefficients(&self) -> &[f64] {
        &self.coeffs
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl ForecastModel for ArModel {
    fn name(&self) -> String {
        format!("ar({})", self.p)
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        let n = series.len();
        let needed = 2 * self.p + 2;
        if n < needed {
            return Err(ForecastError::TooShort { needed, got: n });
        }
        let rows = n - self.p;
        // Design matrix [1, y_{t-1}, …, y_{t-p}].
        let x =
            Matrix::from_fn(
                rows,
                self.p + 1,
                |r, c| {
                    if c == 0 {
                        1.0
                    } else {
                        series[self.p + r - c]
                    }
                },
            );
        let y: Vec<f64> = series[self.p..].to_vec();
        let beta = least_squares(&x, &y)?;
        self.intercept = beta[0];
        self.coeffs = beta[1..].to_vec();
        let mut sse = 0.0;
        for t in self.p..n {
            let mut pred = self.intercept;
            for (i, c) in self.coeffs.iter().enumerate() {
                pred += c * series[t - 1 - i];
            }
            sse += (series[t] - pred).powi(2);
        }
        let n_eff = rows;
        self.sigma2 = sse / n_eff.max(1) as f64;
        self.history = series.to_vec();
        self.fitted = true;
        let ll = -0.5
            * n_eff as f64
            * ((2.0 * std::f64::consts::PI * self.sigma2.max(1e-300)).ln() + 1.0);
        let k = self.p as f64 + 2.0; // coefficients + intercept + sigma
        Ok(FitSummary {
            sigma2: self.sigma2,
            log_likelihood: Some(ll),
            aic: Some(-2.0 * ll + 2.0 * k),
            num_params: self.p + 1,
            n_obs: n_eff,
        })
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let mut extended = self.history.clone();
        let mut means = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let mut pred = self.intercept;
            for (i, c) in self.coeffs.iter().enumerate() {
                pred += c * extended[extended.len() - 1 - i];
            }
            extended.push(pred);
            means.push(pred);
        }
        // Psi weights of a pure AR model.
        let psi = crate::arma::psi_weights(&self.coeffs, &[], horizon);
        let mut cum = 0.0;
        let std_errs: Vec<f64> = (0..horizon)
            .map(|h| {
                cum += psi[h] * psi[h];
                (self.sigma2 * cum).sqrt()
            })
            .collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2: self.sigma2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_arma, ArmaSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_ar1_coefficient() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = ArmaSpec { ar: vec![0.7], ma: vec![], mean: 10.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 3000, &mut rng);
        let mut model = ArModel::new(1);
        let summary = model.fit(&series).unwrap();
        assert!((model.coefficients()[0] - 0.7).abs() < 0.05, "phi = {}", model.coefficients()[0]);
        // Implied mean = intercept / (1 - phi) ≈ 10.
        let implied = model.intercept() / (1.0 - model.coefficients()[0]);
        assert!((implied - 10.0).abs() < 1.0, "mean = {implied}");
        assert!((summary.sigma2 - 1.0).abs() < 0.15, "sigma2 = {}", summary.sigma2);
    }

    #[test]
    fn forecast_decays_to_mean() {
        let mut rng = StdRng::seed_from_u64(8);
        let spec = ArmaSpec { ar: vec![0.5], ma: vec![], mean: 100.0, sigma: 0.5 };
        let series = simulate_arma(&spec, 2000, &mut rng);
        let mut model = ArModel::new(1);
        model.fit(&series).unwrap();
        let f = model.forecast(50, 0.9).unwrap();
        let last = f.points.last().unwrap();
        assert!((last.value - 100.0).abs() < 2.0, "long-run forecast = {}", last.value);
        // Interval widths grow with horizon and saturate.
        assert!(f.points[0].std_err < f.points[10].std_err);
    }

    #[test]
    fn requires_fit_before_forecast() {
        let model = ArModel::new(2);
        assert!(matches!(model.forecast(5, 0.9), Err(ForecastError::NotFitted)));
    }

    #[test]
    fn too_short_series_rejected() {
        let mut model = ArModel::new(3);
        assert!(matches!(model.fit(&[1.0, 2.0, 3.0]), Err(ForecastError::TooShort { .. })));
    }

    #[test]
    fn rejects_non_finite() {
        let mut model = ArModel::new(1);
        let mut series = vec![1.0; 50];
        series[30] = f64::NAN;
        assert!(matches!(model.fit(&series), Err(ForecastError::NonFinite { index: 30 })));
    }

    #[test]
    fn fit_ar_ols_residuals_are_zero_for_exact_process() {
        // Deterministic AR(1): y_t = 0.5 y_{t-1}, no noise.
        let mut series = vec![8.0];
        for _ in 0..30 {
            series.push(0.5 * series.last().unwrap());
        }
        let (coeffs, resid) = fit_ar_ols(&series, 1).unwrap();
        assert!((coeffs[0] - 0.5).abs() < 1e-9);
        assert!(resid[1..].iter().all(|r| r.abs() < 1e-9));
    }

    #[test]
    fn fit_ar_ols_order_zero() {
        let series = vec![1.0, 2.0, 3.0];
        let (coeffs, resid) = fit_ar_ols(&series, 0).unwrap();
        assert!(coeffs.is_empty());
        assert_eq!(resid, series);
    }
}
