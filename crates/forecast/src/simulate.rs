//! Simulation of ARMA processes and Gaussian noise — used to validate
//! Proposition 1 and to test the estimators against series with known
//! parameters.

use rand::Rng;

/// Specification of an ARMA process
/// `M_t = mean + Σ αᵢ (M_{t−i} − mean) + u_t + Σ βⱼ u_{t−j}` with
/// `u_t ~ N(0, sigma²)` — Eq. (3) of the paper plus a mean shift.
#[derive(Debug, Clone)]
pub struct ArmaSpec {
    /// AR coefficients α₁…α_p.
    pub ar: Vec<f64>,
    /// MA coefficients β₁…β_q.
    pub ma: Vec<f64>,
    /// Process mean.
    pub mean: f64,
    /// Innovation standard deviation σ_u.
    pub sigma: f64,
}

/// Draw a standard normal via the Box–Muller transform. Implemented here
/// (rather than pulling in `rand_distr`) to stay within the allowed
/// dependency set.
pub fn randn(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Draw from `N(mean, std²)`.
pub fn randn_scaled(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * randn(rng)
}

/// Draw from a lognormal with the given log-space parameters. Heavy-tailed
/// measure values in the synthetic dataset come from this.
pub fn lognormal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    randn_scaled(rng, mu, sigma).exp()
}

/// Simulate `n` points of the process, discarding a warm-up prefix of
/// `100 + 10·max(p,q)` points so the output is (approximately) stationary.
pub fn simulate_arma(spec: &ArmaSpec, n: usize, rng: &mut impl Rng) -> Vec<f64> {
    let p = spec.ar.len();
    let q = spec.ma.len();
    let warmup = 100 + 10 * p.max(q);
    let total = n + warmup;
    let mut centered = Vec::with_capacity(total);
    let mut noise = Vec::with_capacity(total);
    for t in 0..total {
        let u = spec.sigma * randn(rng);
        let mut value = u;
        for (i, a) in spec.ar.iter().enumerate() {
            if t > i {
                value += a * centered[t - 1 - i];
            }
        }
        for (j, b) in spec.ma.iter().enumerate() {
            if t > j {
                value += b * noise[t - 1 - j];
            }
        }
        centered.push(value);
        noise.push(u);
    }
    centered[warmup..].iter().map(|v| v + spec.mean).collect()
}

/// Add iid `N(0, sigma_eps²)` estimation noise to a series — the `ε_t` of
/// §3 ("unbiasedness" and "independence" are exactly what this produces).
pub fn add_estimation_noise(series: &[f64], sigma_eps: f64, rng: &mut impl Rng) -> Vec<f64> {
    series.iter().map(|v| v + sigma_eps * randn(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, sample_variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| randn(&mut rng)).collect();
        assert!(mean(&xs).abs() < 0.02, "mean = {}", mean(&xs));
        assert!((sample_variance(&xs) - 1.0).abs() < 0.03);
    }

    #[test]
    fn white_noise_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = ArmaSpec { ar: vec![], ma: vec![], mean: 5.0, sigma: 2.0 };
        let xs = simulate_arma(&spec, 20_000, &mut rng);
        assert!((mean(&xs) - 5.0).abs() < 0.1);
        assert!((sample_variance(&xs) - 4.0).abs() < 0.2);
    }

    #[test]
    fn ar1_variance_matches_theory() {
        // Var = σ²/(1−φ²) = 1/(1−0.64) = 2.777…
        let mut rng = StdRng::seed_from_u64(3);
        let spec = ArmaSpec { ar: vec![0.8], ma: vec![], mean: 0.0, sigma: 1.0 };
        let xs = simulate_arma(&spec, 60_000, &mut rng);
        let v = sample_variance(&xs);
        assert!((v - 1.0 / (1.0 - 0.64)).abs() < 0.2, "var = {v}");
    }

    #[test]
    fn arma11_variance_matches_proposition1_constant() {
        // Var[M] = (1 + 2αβ + β²)/(1 − α²) σ² — the `a` of Proposition 1.
        let (alpha, beta, sigma) = (0.6, 0.3, 1.0);
        let a = (1.0 + 2.0 * alpha * beta + beta * beta) / (1.0 - alpha * alpha);
        let mut rng = StdRng::seed_from_u64(4);
        let spec = ArmaSpec { ar: vec![alpha], ma: vec![beta], mean: 0.0, sigma };
        let xs = simulate_arma(&spec, 120_000, &mut rng);
        let v = sample_variance(&xs);
        assert!((v - a).abs() < 0.08, "var = {v}, expected {a}");
    }

    #[test]
    fn estimation_noise_is_additive() {
        let mut rng = StdRng::seed_from_u64(5);
        let base = vec![10.0; 50_000];
        let noisy = add_estimation_noise(&base, 3.0, &mut rng);
        assert!((mean(&noisy) - 10.0).abs() < 0.1);
        assert!((sample_variance(&noisy) - 9.0).abs() < 0.3);
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut rng = StdRng::seed_from_u64(6);
        let xs: Vec<f64> = (0..10_000).map(|_| lognormal(&mut rng, 0.0, 1.0)).collect();
        assert!(xs.iter().all(|v| *v > 0.0));
        let m = mean(&xs);
        let med = {
            let mut s = xs.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(m > med, "lognormal mean {m} should exceed median {med}");
    }
}
