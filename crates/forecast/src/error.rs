//! Error type for model fitting and forecasting.

use std::fmt;

/// Errors raised while fitting or forecasting.
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// The training series is too short for the requested model order.
    TooShort { needed: usize, got: usize },
    /// `forecast` was called before `fit`.
    NotFitted,
    /// An invalid hyper-parameter (e.g. confidence outside (0, 1)).
    InvalidParam(String),
    /// The optimizer or a linear solve failed to produce finite numbers.
    Numerical(String),
    /// The series contains NaN/inf values.
    NonFinite { index: usize },
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::TooShort { needed, got } => {
                write!(f, "series too short: need at least {needed} points, got {got}")
            }
            ForecastError::NotFitted => write!(f, "model has not been fitted"),
            ForecastError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            ForecastError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            ForecastError::NonFinite { index } => {
                write!(f, "series contains a non-finite value at index {index}")
            }
        }
    }
}

impl std::error::Error for ForecastError {}

/// Validate that every value of `series` is finite.
pub fn check_finite(series: &[f64]) -> Result<(), ForecastError> {
    match series.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(ForecastError::NonFinite { index }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_finite_finds_bad_values() {
        assert!(check_finite(&[1.0, 2.0]).is_ok());
        assert_eq!(check_finite(&[1.0, f64::NAN]), Err(ForecastError::NonFinite { index: 1 }));
        assert_eq!(check_finite(&[f64::INFINITY]), Err(ForecastError::NonFinite { index: 0 }));
    }

    #[test]
    fn messages() {
        let e = ForecastError::TooShort { needed: 10, got: 3 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("3"));
    }
}
