//! The §3 analysis: how sample-based estimation noise propagates into
//! model fitting and forecast intervals.
//!
//! FlashP trains on estimates `M̂_t = M_t + ε_t` with `E[ε_t] = 0`,
//! independent across `t`. Proposition 1 shows that for ARMA(1,1)
//!
//! ```text
//! Var[M̂_t] = a · σ_u² + σ_ε²,   a = (1 + 2α₁β₁ + β₁²) / (1 − α₁²)
//! ```
//!
//! i.e. the aggregation error adds *additively* to the model's intrinsic
//! noise and widens forecast intervals accordingly. This module exposes the
//! formula plus a noise-aware interval adjustment used by the engine when
//! per-timestamp variance estimates are available from the sampler.

use crate::error::ForecastError;
use crate::model::Forecast;
use crate::stats::z_for_confidence;

/// The constant `a` of Proposition 1 for ARMA(1,1). Requires `|α₁| < 1`.
pub fn arma11_variance_constant(alpha1: f64, beta1: f64) -> Result<f64, ForecastError> {
    if alpha1.abs() >= 1.0 {
        return Err(ForecastError::InvalidParam(format!(
            "ARMA(1,1) stationarity requires |alpha1| < 1, got {alpha1}"
        )));
    }
    Ok((1.0 + 2.0 * alpha1 * beta1 + beta1 * beta1) / (1.0 - alpha1 * alpha1))
}

/// Proposition 1: stationary variance of the *noisy* series
/// `Var[M̂_t] = a σ_u² + σ_ε²`.
pub fn arma11_noisy_variance(
    alpha1: f64,
    beta1: f64,
    sigma_u2: f64,
    sigma_eps2: f64,
) -> Result<f64, ForecastError> {
    Ok(arma11_variance_constant(alpha1, beta1)? * sigma_u2 + sigma_eps2)
}

/// Widen a forecast's intervals to account for estimation noise of variance
/// `sigma_eps2` (e.g. the sampler's per-timestamp variance estimate
/// averaged over the training window): each standard error becomes
/// `sqrt(se² + σ_ε²)`.
///
/// Note the *fitted* model's residual variance already absorbs ε noise
/// present in the training data; this adjustment is for callers that want
/// to expose the decomposition explicitly (e.g. to report how much of an
/// interval is due to sampling), or that fitted on exact data and want to
/// simulate a sampling rate.
pub fn widen_with_noise(forecast: &Forecast, sigma_eps2: f64) -> Result<Forecast, ForecastError> {
    if sigma_eps2 < 0.0 {
        return Err(ForecastError::InvalidParam(format!(
            "noise variance must be >= 0, got {sigma_eps2}"
        )));
    }
    let z = z_for_confidence(forecast.confidence);
    let mut out = forecast.clone();
    for p in out.points.iter_mut() {
        let se = (p.std_err * p.std_err + sigma_eps2).sqrt();
        p.std_err = se;
        p.lo = p.value - z * se;
        p.hi = p.value + z * se;
    }
    out.sigma2 = forecast.sigma2 + sigma_eps2;
    Ok(out)
}

/// Fraction of total forecast variance attributable to sampling noise at
/// the one-step horizon — a diagnostic for "is my sample big enough?"
/// (when ε's variance is negligible vs the model noise, sampling has
/// little impact on intervals; Exp-IV's observation).
pub fn noise_share(model_sigma2: f64, sigma_eps2: f64) -> f64 {
    if model_sigma2 + sigma_eps2 <= 0.0 {
        return 0.0;
    }
    sigma_eps2 / (model_sigma2 + sigma_eps2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{points_from_std_errs, Forecast};

    #[test]
    fn constant_matches_hand_computation() {
        // a = (1 + 2·0.5·0.2 + 0.04) / (1 − 0.25) = 1.24 / 0.75
        let a = arma11_variance_constant(0.5, 0.2).unwrap();
        assert!((a - 1.24 / 0.75).abs() < 1e-12);
    }

    #[test]
    fn pure_white_noise_case() {
        // α = β = 0 → a = 1, Var = σ_u² + σ_ε².
        assert_eq!(arma11_noisy_variance(0.0, 0.0, 2.0, 3.0).unwrap(), 5.0);
    }

    #[test]
    fn nonstationary_rejected() {
        assert!(arma11_variance_constant(1.0, 0.0).is_err());
        assert!(arma11_variance_constant(-1.2, 0.0).is_err());
    }

    #[test]
    fn widen_increases_intervals() {
        let f = Forecast {
            points: points_from_std_errs(&[10.0, 12.0], &[1.0, 2.0], 0.9),
            confidence: 0.9,
            sigma2: 1.0,
        };
        let wide = widen_with_noise(&f, 3.0).unwrap();
        for (orig, w) in f.points.iter().zip(&wide.points) {
            assert!(w.std_err > orig.std_err);
            assert_eq!(w.value, orig.value);
            assert!(w.hi - w.lo > orig.hi - orig.lo);
        }
        // se1 = sqrt(1 + 3) = 2.
        assert!((wide.points[0].std_err - 2.0).abs() < 1e-12);
        assert_eq!(wide.sigma2, 4.0);
    }

    #[test]
    fn widen_with_zero_noise_is_identity() {
        let f = Forecast {
            points: points_from_std_errs(&[1.0], &[0.5], 0.9),
            confidence: 0.9,
            sigma2: 0.25,
        };
        let same = widen_with_noise(&f, 0.0).unwrap();
        assert!((same.points[0].std_err - 0.5).abs() < 1e-12);
        assert!(widen_with_noise(&f, -1.0).is_err());
    }

    #[test]
    fn noise_share_bounds() {
        assert_eq!(noise_share(1.0, 0.0), 0.0);
        assert_eq!(noise_share(0.0, 1.0), 1.0);
        assert!((noise_share(3.0, 1.0) - 0.25).abs() < 1e-12);
        assert_eq!(noise_share(0.0, 0.0), 0.0);
    }
}
