//! Exponential smoothing (ETS) models — simple, Holt linear-trend, and
//! additive Holt–Winters. These are "pluggable" extension models in the
//! sense of §5; smoothing parameters are fitted by minimizing the one-step
//! SSE with Nelder–Mead over a logistic parameterization that keeps them
//! in (0, 1).

use crate::error::{check_finite, ForecastError};
use crate::model::{
    points_from_std_errs, validate_forecast_args, FitSummary, Forecast, ForecastModel,
};
use crate::optimize::{nelder_mead, NelderMeadOptions};

/// Which ETS variant to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtsVariant {
    /// Simple exponential smoothing (level only).
    Simple,
    /// Holt's linear trend (level + trend).
    Holt,
    /// Additive Holt–Winters (level + trend + seasonal of the given period).
    HoltWinters { period: usize },
}

/// Fitted state of an ETS model.
#[derive(Debug, Clone, Default)]
struct EtsState {
    level: f64,
    trend: f64,
    seasonals: Vec<f64>,
}

/// An exponential smoothing forecaster.
#[derive(Debug, Clone)]
pub struct EtsModel {
    variant: EtsVariant,
    alpha: f64,
    beta: f64,
    gamma: f64,
    state: EtsState,
    sigma2: f64,
    fitted: bool,
}

fn logistic(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    (p / (1.0 - p)).ln()
}

impl EtsModel {
    /// New unfitted model.
    pub fn new(variant: EtsVariant) -> Self {
        EtsModel {
            variant,
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.1,
            state: EtsState::default(),
            sigma2: 0.0,
            fitted: false,
        }
    }

    /// Fitted smoothing parameters `(alpha, beta, gamma)`; entries beyond
    /// the variant's needs are zero.
    pub fn params(&self) -> (f64, f64, f64) {
        match self.variant {
            EtsVariant::Simple => (self.alpha, 0.0, 0.0),
            EtsVariant::Holt => (self.alpha, self.beta, 0.0),
            EtsVariant::HoltWinters { .. } => (self.alpha, self.beta, self.gamma),
        }
    }

    fn period(&self) -> usize {
        match self.variant {
            EtsVariant::HoltWinters { period } => period,
            _ => 0,
        }
    }

    /// One smoothing pass: returns `(sse, n_pred, final_state)`.
    fn run(&self, series: &[f64], alpha: f64, beta: f64, gamma: f64) -> (f64, usize, EtsState) {
        let m = self.period();
        let mut state = EtsState::default();
        // Initialization: level = first value (or first-season mean),
        // trend = mean first differences, seasonals = deviations from the
        // first season's mean.
        match self.variant {
            EtsVariant::Simple => {
                state.level = series[0];
            }
            EtsVariant::Holt => {
                state.level = series[0];
                state.trend = series[1] - series[0];
            }
            EtsVariant::HoltWinters { period } => {
                let season_mean: f64 = series[..period].iter().sum::<f64>() / period as f64;
                state.level = season_mean;
                state.trend = (series[period..2 * period].iter().sum::<f64>() / period as f64
                    - season_mean)
                    / period as f64;
                state.seasonals = series[..period].iter().map(|v| v - season_mean).collect();
            }
        }
        let start = match self.variant {
            EtsVariant::Simple => 1,
            EtsVariant::Holt => 2,
            EtsVariant::HoltWinters { period } => period,
        };
        let mut sse = 0.0;
        let mut n_pred = 0usize;
        for (t, y) in series.iter().enumerate().skip(start) {
            let seasonal = if m > 0 { state.seasonals[t % m] } else { 0.0 };
            let pred = state.level + state.trend + seasonal;
            let err = y - pred;
            sse += err * err;
            n_pred += 1;
            let prev_level = state.level;
            state.level = alpha * (y - seasonal) + (1.0 - alpha) * (state.level + state.trend);
            if !matches!(self.variant, EtsVariant::Simple) {
                state.trend = beta * (state.level - prev_level) + (1.0 - beta) * state.trend;
            }
            if m > 0 {
                state.seasonals[t % m] = gamma * (y - state.level) + (1.0 - gamma) * seasonal;
            }
        }
        (sse, n_pred, state)
    }

    fn min_len(&self) -> usize {
        match self.variant {
            EtsVariant::Simple => 3,
            EtsVariant::Holt => 4,
            EtsVariant::HoltWinters { period } => 2 * period + 1,
        }
    }
}

impl ForecastModel for EtsModel {
    fn name(&self) -> String {
        match self.variant {
            EtsVariant::Simple => "ets(simple)".to_string(),
            EtsVariant::Holt => "ets(holt)".to_string(),
            EtsVariant::HoltWinters { period } => format!("ets(holt_winters,{period})"),
        }
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        if let EtsVariant::HoltWinters { period } = self.variant {
            if period < 2 {
                return Err(ForecastError::InvalidParam("period must be >= 2".to_string()));
            }
        }
        if series.len() < self.min_len() {
            return Err(ForecastError::TooShort { needed: self.min_len(), got: series.len() });
        }
        let dims = match self.variant {
            EtsVariant::Simple => 1,
            EtsVariant::Holt => 2,
            EtsVariant::HoltWinters { .. } => 3,
        };
        let x0: Vec<f64> = [logit(0.3), logit(0.1), logit(0.1)][..dims].to_vec();
        let objective = |x: &[f64]| {
            let alpha = logistic(x[0]);
            let beta = if dims > 1 { logistic(x[1]) } else { 0.0 };
            let gamma = if dims > 2 { logistic(x[2]) } else { 0.0 };
            self.run(series, alpha, beta, gamma).0
        };
        let result = nelder_mead(
            objective,
            &x0,
            NelderMeadOptions { max_evals: 1500, f_tol: 1e-10, initial_step: 0.5 },
        );
        self.alpha = logistic(result.x[0]);
        self.beta = if dims > 1 { logistic(result.x[1]) } else { 0.0 };
        self.gamma = if dims > 2 { logistic(result.x[2]) } else { 0.0 };
        let (sse, n_pred, state) = self.run(series, self.alpha, self.beta, self.gamma);
        self.state = state;
        self.sigma2 = sse / n_pred.max(1) as f64;
        self.fitted = true;
        Ok(FitSummary {
            sigma2: self.sigma2,
            log_likelihood: None,
            aic: None,
            num_params: dims,
            n_obs: n_pred,
        })
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let m = self.period();
        let means: Vec<f64> = (1..=horizon)
            .map(|h| {
                let seasonal = if m > 0 {
                    // The seasonal index that slot `h` continues.
                    self.state.seasonals[(self.state.seasonals.len() + h - 1) % m]
                } else {
                    0.0
                };
                self.state.level + self.state.trend * h as f64 + seasonal
            })
            .collect();
        // Standard error via the class-2 approximation: c_j = α(1 + jβ)
        // (+ γ at seasonal multiples); Var_h = σ²(1 + Σ_{j<h} c_j²).
        let mut cum = 0.0;
        let std_errs: Vec<f64> = (1..=horizon)
            .map(|h| {
                if h > 1 {
                    let j = (h - 1) as f64;
                    let mut c = self.alpha * (1.0 + j * self.beta);
                    if m > 0 && (h - 1) % m == 0 {
                        c += self.gamma * (1.0 - self.alpha);
                    }
                    cum += c * c;
                }
                (self.sigma2 * (1.0 + cum)).sqrt()
            })
            .collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2: self.sigma2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn simple_converges_to_level() {
        let mut rng = StdRng::seed_from_u64(30);
        let series: Vec<f64> = (0..200).map(|_| 50.0 + randn(&mut rng)).collect();
        let mut m = EtsModel::new(EtsVariant::Simple);
        m.fit(&series).unwrap();
        let f = m.forecast(5, 0.9).unwrap();
        for p in &f.points {
            assert!((p.value - 50.0).abs() < 2.0, "forecast = {}", p.value);
        }
        // Flat point forecasts for SES.
        assert!((f.points[0].value - f.points[4].value).abs() < 1e-9);
    }

    #[test]
    fn holt_follows_trend() {
        let mut rng = StdRng::seed_from_u64(31);
        let series: Vec<f64> = (0..150).map(|t| 2.0 * t as f64 + randn(&mut rng)).collect();
        let mut m = EtsModel::new(EtsVariant::Holt);
        m.fit(&series).unwrap();
        let f = m.forecast(5, 0.9).unwrap();
        for (h, p) in f.points.iter().enumerate() {
            let expected = 2.0 * (149 + h + 1) as f64;
            assert!((p.value - expected).abs() < 5.0, "h={h}: {} vs {expected}", p.value);
        }
    }

    #[test]
    fn holt_winters_reproduces_seasonality() {
        let mut rng = StdRng::seed_from_u64(32);
        let season = [10.0, -5.0, 0.0, -5.0];
        let series: Vec<f64> =
            (0..160).map(|t| 100.0 + season[t % 4] + 0.3 * randn(&mut rng)).collect();
        let mut m = EtsModel::new(EtsVariant::HoltWinters { period: 4 });
        m.fit(&series).unwrap();
        let f = m.forecast(8, 0.9).unwrap();
        // Next points continue the seasonal pattern (t = 160, 161, …).
        for (h, p) in f.points.iter().enumerate() {
            let expected = 100.0 + season[(160 + h) % 4];
            assert!((p.value - expected).abs() < 2.0, "h={h}: {} vs {expected}", p.value);
        }
    }

    #[test]
    fn interval_widths_nondecreasing() {
        let mut rng = StdRng::seed_from_u64(33);
        let series: Vec<f64> = (0..100).map(|t| t as f64 + randn(&mut rng)).collect();
        let mut m = EtsModel::new(EtsVariant::Holt);
        m.fit(&series).unwrap();
        let f = m.forecast(10, 0.9).unwrap();
        for w in f.points.windows(2) {
            assert!(w[1].std_err >= w[0].std_err);
        }
    }

    #[test]
    fn validation() {
        assert!(EtsModel::new(EtsVariant::Simple).fit(&[1.0]).is_err());
        assert!(EtsModel::new(EtsVariant::HoltWinters { period: 1 }).fit(&[1.0; 30]).is_err());
        assert!(EtsModel::new(EtsVariant::HoltWinters { period: 7 }).fit(&[1.0; 10]).is_err());
        assert!(EtsModel::new(EtsVariant::Simple).forecast(3, 0.9).is_err());
    }
}
