//! ARMA(p, q) — the classic model of Eq. (3):
//! `M_t = Σ αᵢ M_{t−i} + u_t + Σ βⱼ u_{t−j}`.
//!
//! Fitting pipeline:
//! 1. demean the series (the mean is added back at forecast time);
//! 2. **Hannan–Rissanen**: fit a long AR by OLS to obtain innovation
//!    estimates, then regress `w_t` on lagged values and lagged innovations
//!    for initial `(α, β)`;
//! 3. refine by minimizing the **conditional sum of squares** with
//!    Nelder–Mead over a *partial-autocorrelation parameterization*
//!    (`tanh`-transformed), which keeps the AR polynomial stationary and
//!    the MA polynomial invertible by construction;
//! 4. forecast iteratively with psi-weight standard errors, yielding the
//!    forecast intervals of Fig. 3 / Fig. 12.

use crate::ar::fit_ar_ols;
use crate::error::{check_finite, ForecastError};
use crate::linalg::{least_squares, Matrix};
use crate::model::{
    points_from_std_errs, validate_forecast_args, FitSummary, Forecast, ForecastModel,
};
use crate::optimize::{nelder_mead, NelderMeadOptions};
use crate::stats::mean;

/// Map partial autocorrelations in `(−1, 1)` to AR coefficients of a
/// stationary polynomial (Barndorff-Nielsen–Schou / Monahan recursion).
/// The same map applied to MA partials yields an invertible MA polynomial.
pub fn pacf_to_coeffs(pacs: &[f64]) -> Vec<f64> {
    let p = pacs.len();
    let mut phi = vec![0.0; p];
    for k in 0..p {
        let r = pacs[k];
        let prev = phi.clone();
        phi[k] = r;
        for j in 0..k {
            phi[j] = prev[j] - r * prev[k - 1 - j];
        }
    }
    phi
}

/// Inverse of [`pacf_to_coeffs`]; coefficients outside the stationary
/// region are projected in (partials clamped to `(−0.99, 0.99)`).
pub fn coeffs_to_pacf(coeffs: &[f64]) -> Vec<f64> {
    let p = coeffs.len();
    let mut pacs = vec![0.0; p];
    let mut phi = coeffs.to_vec();
    for k in (0..p).rev() {
        let r = phi[k].clamp(-0.99, 0.99);
        pacs[k] = r;
        if k == 0 {
            break;
        }
        let denom = 1.0 - r * r;
        let prev = phi.clone();
        for j in 0..k {
            phi[j] = (prev[j] + r * prev[k - 1 - j]) / denom;
        }
        // Guard against numerically exploding back-transform.
        if phi[..k].iter().any(|v| !v.is_finite()) {
            for v in phi[..k].iter_mut() {
                *v = 0.0;
            }
        }
    }
    pacs
}

/// Psi (MA-infinity) weights `ψ_0..ψ_{horizon−1}` of an ARMA model:
/// `ψ_0 = 1`, `ψ_j = β_j + Σ_{i=1..min(j,p)} α_i ψ_{j−i}`. Forecast error
/// variance at horizon `h` is `σ² Σ_{j<h} ψ_j²`.
pub fn psi_weights(ar: &[f64], ma: &[f64], horizon: usize) -> Vec<f64> {
    let mut psi = Vec::with_capacity(horizon.max(1));
    psi.push(1.0);
    for j in 1..horizon {
        let mut v = if j <= ma.len() { ma[j - 1] } else { 0.0 };
        for (i, a) in ar.iter().enumerate() {
            if j > i {
                v += a * psi[j - 1 - i];
            }
        }
        psi.push(v);
    }
    psi
}

/// Conditional sum of squares of a zero-mean ARMA on `w`: residuals for
/// `t ≥ p`, pre-sample innovations set to zero. Returns `(css, residuals)`.
pub fn css_residuals(w: &[f64], ar: &[f64], ma: &[f64]) -> (f64, Vec<f64>) {
    let n = w.len();
    let p = ar.len();
    let mut e = vec![0.0; n];
    let mut css = 0.0;
    for t in p..n {
        let mut pred = 0.0;
        for (i, a) in ar.iter().enumerate() {
            pred += a * w[t - 1 - i];
        }
        for (j, b) in ma.iter().enumerate() {
            if t > j {
                pred += b * e[t - 1 - j];
            }
        }
        e[t] = w[t] - pred;
        css += e[t] * e[t];
    }
    (css, e)
}

/// ARMA(p, q) forecasting model (see module docs for the fitting scheme).
#[derive(Debug, Clone)]
pub struct ArmaModel {
    p: usize,
    q: usize,
    ar: Vec<f64>,
    ma: Vec<f64>,
    mean: f64,
    sigma2: f64,
    /// Demeaned training series.
    w: Vec<f64>,
    /// CSS residuals aligned with `w`.
    resid: Vec<f64>,
    fitted: bool,
}

impl ArmaModel {
    /// New unfitted ARMA(p, q).
    pub fn new(p: usize, q: usize) -> Self {
        ArmaModel {
            p,
            q,
            ar: Vec::new(),
            ma: Vec::new(),
            mean: 0.0,
            sigma2: 0.0,
            w: Vec::new(),
            resid: Vec::new(),
            fitted: false,
        }
    }

    /// Fitted AR coefficients α.
    pub fn ar_coefficients(&self) -> &[f64] {
        &self.ar
    }

    /// Fitted MA coefficients β.
    pub fn ma_coefficients(&self) -> &[f64] {
        &self.ma
    }

    /// Estimated process mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Estimated innovation variance σ̂_u².
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Minimum series length needed for this order.
    pub fn min_observations(&self) -> usize {
        (2 * self.p.max(self.q) + self.p + self.q + 4).max(8)
    }

    /// Hannan–Rissanen initial estimates on the demeaned series `w`.
    fn hannan_rissanen(&self, w: &[f64]) -> Result<(Vec<f64>, Vec<f64>), ForecastError> {
        let n = w.len();
        if self.q == 0 {
            let (ar, _) = fit_ar_ols(w, self.p)?;
            return Ok((ar, Vec::new()));
        }
        // Long AR order: enough lags to whiten, but leave regression rows.
        let long = ((10.0 * (n as f64).log10()) as usize).max(self.p + self.q).min(n / 3).max(1);
        let (_, ehat) = fit_ar_ols(w, long)?;
        let start = long.max(self.p).max(self.q);
        let rows = n - start;
        let cols = self.p + self.q;
        if rows < cols + 1 {
            return Err(ForecastError::TooShort { needed: start + cols + 1, got: n });
        }
        let x = Matrix::from_fn(rows, cols, |r, c| {
            let t = start + r;
            if c < self.p {
                w[t - 1 - c]
            } else {
                ehat[t - 1 - (c - self.p)]
            }
        });
        let y: Vec<f64> = w[start..].to_vec();
        let beta = least_squares(&x, &y)?;
        Ok((beta[..self.p].to_vec(), beta[self.p..].to_vec()))
    }
}

impl ForecastModel for ArmaModel {
    fn name(&self) -> String {
        format!("arma({},{})", self.p, self.q)
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        let n = series.len();
        let needed = self.min_observations();
        if n < needed {
            return Err(ForecastError::TooShort { needed, got: n });
        }
        self.mean = mean(series);
        let w: Vec<f64> = series.iter().map(|v| v - self.mean).collect();

        if self.p == 0 && self.q == 0 {
            // White noise around the mean.
            let (css, resid) = css_residuals(&w, &[], &[]);
            self.ar.clear();
            self.ma.clear();
            self.sigma2 = css / n as f64;
            self.w = w;
            self.resid = resid;
            self.fitted = true;
            let ll = gaussian_css_loglik(self.sigma2, n);
            return Ok(FitSummary {
                sigma2: self.sigma2,
                log_likelihood: Some(ll),
                aic: Some(-2.0 * ll + 2.0 * 2.0),
                num_params: 1,
                n_obs: n,
            });
        }

        // 1. Initial estimates.
        let (ar0, ma0) = self.hannan_rissanen(&w).unwrap_or((vec![0.0; self.p], vec![0.0; self.q]));

        // 2. Unconstrained parameterization via partials.
        let mut x0: Vec<f64> = coeffs_to_pacf(&ar0)
            .iter()
            .chain(coeffs_to_pacf(&ma0).iter())
            .map(|r| r.clamp(-0.95, 0.95).atanh())
            .collect();
        if x0.iter().any(|v| !v.is_finite()) {
            x0 = vec![0.0; self.p + self.q];
        }

        // 3. CSS refinement.
        let p = self.p;
        let objective = |x: &[f64]| -> f64 {
            let pacs_ar: Vec<f64> = x[..p].iter().map(|v| v.tanh()).collect();
            let pacs_ma: Vec<f64> = x[p..].iter().map(|v| v.tanh()).collect();
            let ar = pacf_to_coeffs(&pacs_ar);
            let ma = pacf_to_coeffs(&pacs_ma);
            css_residuals(&w, &ar, &ma).0
        };
        let result = nelder_mead(
            objective,
            &x0,
            NelderMeadOptions { max_evals: 4000, f_tol: 1e-12, initial_step: 0.25 },
        );
        let pacs_ar: Vec<f64> = result.x[..p].iter().map(|v| v.tanh()).collect();
        let pacs_ma: Vec<f64> = result.x[p..].iter().map(|v| v.tanh()).collect();
        self.ar = pacf_to_coeffs(&pacs_ar);
        self.ma = pacf_to_coeffs(&pacs_ma);

        let (css, resid) = css_residuals(&w, &self.ar, &self.ma);
        let n_eff = n - self.p;
        self.sigma2 = css / n_eff.max(1) as f64;
        if !self.sigma2.is_finite() {
            return Err(ForecastError::Numerical("CSS fit produced non-finite variance".into()));
        }
        self.w = w;
        self.resid = resid;
        self.fitted = true;

        let ll = gaussian_css_loglik(self.sigma2, n_eff);
        let k = (self.p + self.q + 2) as f64; // + mean + sigma
        Ok(FitSummary {
            sigma2: self.sigma2,
            log_likelihood: Some(ll),
            aic: Some(-2.0 * ll + 2.0 * k),
            num_params: self.p + self.q + 1,
            n_obs: n_eff,
        })
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let n = self.w.len();
        // Iterated forecasts: future innovations are zero; known residuals
        // feed the MA terms while they are still within reach.
        let mut w_ext = self.w.clone();
        let mut e_ext = self.resid.clone();
        let mut means = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let t = w_ext.len();
            let mut pred = 0.0;
            for (i, a) in self.ar.iter().enumerate() {
                if t > i {
                    pred += a * w_ext[t - 1 - i];
                }
            }
            for (j, b) in self.ma.iter().enumerate() {
                if t > j {
                    pred += b * e_ext[t - 1 - j];
                }
            }
            w_ext.push(pred);
            e_ext.push(0.0);
            means.push(pred + self.mean);
        }
        debug_assert_eq!(w_ext.len(), n + horizon);

        let psi = psi_weights(&self.ar, &self.ma, horizon);
        let mut cum = 0.0;
        let std_errs: Vec<f64> = (0..horizon)
            .map(|h| {
                cum += psi[h] * psi[h];
                (self.sigma2 * cum).sqrt()
            })
            .collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2: self.sigma2,
        })
    }
}

fn gaussian_css_loglik(sigma2: f64, n_eff: usize) -> f64 {
    -0.5 * n_eff as f64 * ((2.0 * std::f64::consts::PI * sigma2.max(1e-300)).ln() + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_arma, ArmaSpec};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pacf_transform_round_trips() {
        for pacs in [vec![0.5], vec![0.3, -0.4], vec![0.8, 0.1, -0.2]] {
            let coeffs = pacf_to_coeffs(&pacs);
            let back = coeffs_to_pacf(&coeffs);
            for (a, b) in pacs.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{pacs:?} -> {coeffs:?} -> {back:?}");
            }
        }
    }

    proptest! {
        #[test]
        fn pacf_to_coeffs_always_stationary(
            pacs in proptest::collection::vec(-0.6f64..0.6, 1..5)
        ) {
            // With partials bounded away from ±1 the implied AR spectral
            // radius stays well below 1, so psi weights must decay to ~0
            // long before lag 2000.
            let coeffs = pacf_to_coeffs(&pacs);
            let psi = psi_weights(&coeffs, &[], 2000);
            let tail: f64 = psi[1900..].iter().map(|v| v.abs()).sum();
            prop_assert!(tail.is_finite());
            prop_assert!(tail < 1e-3, "non-decaying psi for coeffs {:?}", coeffs);
        }
    }

    #[test]
    fn psi_weights_ar1() {
        let psi = psi_weights(&[0.5], &[], 5);
        for (j, v) in psi.iter().enumerate() {
            assert!((v - 0.5f64.powi(j as i32)).abs() < 1e-12);
        }
    }

    #[test]
    fn psi_weights_ma1() {
        let psi = psi_weights(&[], &[0.4], 4);
        assert_eq!(psi, vec![1.0, 0.4, 0.0, 0.0]);
    }

    #[test]
    fn psi_weights_arma11() {
        // ψ_j = (α + β) α^{j-1} for ARMA(1,1).
        let (a, b) = (0.6, 0.3);
        let psi = psi_weights(&[a], &[b], 6);
        assert_eq!(psi[0], 1.0);
        for j in 1..6 {
            let expect = (a + b) * a.powi(j as i32 - 1);
            assert!((psi[j] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn recovers_arma11_parameters() {
        let mut rng = StdRng::seed_from_u64(42);
        let spec = ArmaSpec { ar: vec![0.8], ma: vec![0.1], mean: 50.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 4000, &mut rng);
        let mut model = ArmaModel::new(1, 1);
        let summary = model.fit(&series).unwrap();
        assert!(
            (model.ar_coefficients()[0] - 0.8).abs() < 0.08,
            "alpha = {}",
            model.ar_coefficients()[0]
        );
        assert!(
            (model.ma_coefficients()[0] - 0.1).abs() < 0.12,
            "beta = {}",
            model.ma_coefficients()[0]
        );
        assert!((model.mean() - 50.0).abs() < 1.0);
        assert!((summary.sigma2 - 1.0).abs() < 0.1, "sigma2 = {}", summary.sigma2);
    }

    #[test]
    fn recovers_ma1() {
        let mut rng = StdRng::seed_from_u64(43);
        let spec = ArmaSpec { ar: vec![], ma: vec![0.6], mean: 0.0, sigma: 2.0 };
        let series = simulate_arma(&spec, 4000, &mut rng);
        let mut model = ArmaModel::new(0, 1);
        model.fit(&series).unwrap();
        assert!(
            (model.ma_coefficients()[0] - 0.6).abs() < 0.08,
            "beta = {}",
            model.ma_coefficients()[0]
        );
        assert!((model.sigma2() - 4.0).abs() < 0.4);
    }

    #[test]
    fn white_noise_model() {
        let mut rng = StdRng::seed_from_u64(44);
        let spec = ArmaSpec { ar: vec![], ma: vec![], mean: 7.0, sigma: 1.5 };
        let series = simulate_arma(&spec, 500, &mut rng);
        let mut model = ArmaModel::new(0, 0);
        model.fit(&series).unwrap();
        let f = model.forecast(3, 0.9).unwrap();
        for p in &f.points {
            assert!((p.value - 7.0).abs() < 0.3);
            // Constant interval width for white noise.
            assert!((p.std_err - model.sigma2().sqrt()).abs() < 1e-9);
        }
    }

    #[test]
    fn forecast_intervals_widen_with_horizon() {
        let mut rng = StdRng::seed_from_u64(45);
        let spec = ArmaSpec { ar: vec![0.7], ma: vec![0.2], mean: 0.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 800, &mut rng);
        let mut model = ArmaModel::new(1, 1);
        model.fit(&series).unwrap();
        let f = model.forecast(10, 0.9).unwrap();
        for pair in f.points.windows(2) {
            assert!(pair[1].std_err >= pair[0].std_err - 1e-12);
        }
        // Higher confidence → wider interval.
        let f95 = model.forecast(10, 0.95).unwrap();
        assert!(f95.mean_interval_width() > f.mean_interval_width());
    }

    #[test]
    fn too_short_rejected() {
        let mut model = ArmaModel::new(2, 2);
        assert!(matches!(model.fit(&[1.0; 5]), Err(ForecastError::TooShort { .. })));
    }

    #[test]
    fn not_fitted_rejected() {
        let model = ArmaModel::new(1, 1);
        assert!(matches!(model.forecast(7, 0.9), Err(ForecastError::NotFitted)));
    }

    #[test]
    fn css_residuals_white_noise_identity() {
        let w = vec![1.0, -2.0, 0.5];
        let (css, e) = css_residuals(&w, &[], &[]);
        assert_eq!(e, w);
        assert!((css - (1.0 + 4.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn fit_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(46);
        let spec = ArmaSpec { ar: vec![0.5], ma: vec![0.2], mean: 10.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 300, &mut rng);
        let mut m1 = ArmaModel::new(1, 1);
        let mut m2 = ArmaModel::new(1, 1);
        m1.fit(&series).unwrap();
        m2.fit(&series).unwrap();
        assert_eq!(m1.ar_coefficients(), m2.ar_coefficients());
        assert_eq!(m1.forecast(7, 0.9).unwrap().values(), m2.forecast(7, 0.9).unwrap().values());
    }
}
