//! The LSTM-based forecasting model of Fig. 4, built from scratch.
//!
//! Architecture (matching the paper's Keras deployment, §5): an LSTM unit
//! with output dimensionality `d` (default 4) consumes the previous
//! `K` (default 7) metric values as a length-`K` sequence of scalars; the
//! final hidden state feeds a `d × 1` fully-connected layer that outputs
//! the forecast of `M_t`. Training minimizes MSE over all sliding windows
//! with full-batch backpropagation-through-time and Adam.
//!
//! The input series is z-normalized before training; forecasts are
//! produced iteratively (each prediction becomes an input for the next
//! step, exactly the `M̂_{t0+1|t0}` chaining of §2). Interval standard
//! errors use the residual σ scaled by √h — a standard heuristic for
//! iterated neural forecasters (the paper derives no analytic intervals
//! for LSTM either; see §3 "It is difficult to derive any formal
//! analytical result here").

use crate::error::{check_finite, ForecastError};
use crate::model::{
    points_from_std_errs, validate_forecast_args, FitSummary, Forecast, ForecastModel,
};
use crate::stats::{mean, std_dev};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters of the LSTM forecaster.
#[derive(Debug, Clone, Copy)]
pub struct LstmConfig {
    /// Input window length `K`.
    pub window: usize,
    /// Hidden (cell) dimensionality `d`.
    pub hidden: usize,
    /// Training epochs (full-batch Adam steps).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Global gradient-norm clip.
    pub grad_clip: f64,
    /// RNG seed for weight initialization (fits are deterministic).
    pub seed: u64,
}

impl Default for LstmConfig {
    fn default() -> Self {
        // K = 7, d = 4: the paper's default parameter setting (§5).
        LstmConfig {
            window: 7,
            hidden: 4,
            epochs: 200,
            learning_rate: 0.02,
            grad_clip: 5.0,
            seed: 0x5EED,
        }
    }
}

/// Offsets into the flat parameter vector.
#[derive(Debug, Clone, Copy)]
struct Layout {
    hidden: usize,
    wx: usize, // 4H input weights (input size 1)
    wh: usize, // 4H × H recurrent weights
    b: usize,  // 4H biases
    wy: usize, // H output weights
    by: usize, // output bias
    len: usize,
}

impl Layout {
    fn new(hidden: usize) -> Self {
        let wx = 0;
        let wh = wx + 4 * hidden;
        let b = wh + 4 * hidden * hidden;
        let wy = b + 4 * hidden;
        let by = wy + hidden;
        Layout { hidden, wx, wh, b, wy, by, len: by + 1 }
    }
}

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-step cache of the forward pass, kept for BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: f64,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    tanh_c: Vec<f64>,
}

/// LSTM forecaster implementing [`ForecastModel`].
#[derive(Debug, Clone)]
pub struct LstmForecaster {
    config: LstmConfig,
    layout: Layout,
    theta: Vec<f64>,
    norm_mean: f64,
    norm_std: f64,
    history: Vec<f64>,
    sigma2: f64,
    fitted: bool,
}

impl LstmForecaster {
    /// New unfitted forecaster.
    pub fn new(config: LstmConfig) -> Self {
        let layout = Layout::new(config.hidden.max(1));
        LstmForecaster {
            config,
            layout,
            theta: vec![0.0; layout.len],
            norm_mean: 0.0,
            norm_std: 1.0,
            history: Vec::new(),
            sigma2: 0.0,
            fitted: false,
        }
    }

    /// The configuration this forecaster was built with.
    pub fn config(&self) -> &LstmConfig {
        &self.config
    }

    fn init_weights(&mut self) {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let h = self.layout.hidden;
        let scale = 1.0 / ((h + 1) as f64).sqrt();
        for v in self.theta.iter_mut() {
            *v = rng.gen_range(-scale..scale);
        }
        // Forget-gate bias starts at 1 so memory persists early in training.
        for k in 0..h {
            self.theta[self.layout.b + h + k] = 1.0;
        }
        self.theta[self.layout.by] = 0.0;
    }

    /// Forward one window; returns `(prediction, caches, final_h)`.
    fn forward(&self, theta: &[f64], xs: &[f64]) -> (f64, Vec<StepCache>, Vec<f64>) {
        let l = self.layout;
        let hd = l.hidden;
        let mut h = vec![0.0; hd];
        let mut c = vec![0.0; hd];
        let mut caches = Vec::with_capacity(xs.len());
        for &x in xs {
            let h_prev = h.clone();
            let c_prev = c.clone();
            let mut i_g = vec![0.0; hd];
            let mut f_g = vec![0.0; hd];
            let mut g_g = vec![0.0; hd];
            let mut o_g = vec![0.0; hd];
            for k in 0..4 * hd {
                let mut z = theta[l.wx + k] * x + theta[l.b + k];
                let row = l.wh + k * hd;
                for j in 0..hd {
                    z += theta[row + j] * h_prev[j];
                }
                let gate = k / hd;
                let idx = k % hd;
                match gate {
                    0 => i_g[idx] = sigmoid(z),
                    1 => f_g[idx] = sigmoid(z),
                    2 => g_g[idx] = z.tanh(),
                    _ => o_g[idx] = sigmoid(z),
                }
            }
            let mut tanh_c = vec![0.0; hd];
            for k in 0..hd {
                c[k] = f_g[k] * c_prev[k] + i_g[k] * g_g[k];
                tanh_c[k] = c[k].tanh();
                h[k] = o_g[k] * tanh_c[k];
            }
            caches.push(StepCache { x, h_prev, c_prev, i: i_g, f: f_g, g: g_g, o: o_g, tanh_c });
        }
        let mut y = theta[l.by];
        for k in 0..hd {
            y += theta[l.wy + k] * h[k];
        }
        (y, caches, h)
    }

    /// Mean-squared-error loss and gradient over all `(window, target)`
    /// pairs. Exposed at crate level for the finite-difference test.
    fn loss_and_grad(&self, theta: &[f64], windows: &[(Vec<f64>, f64)]) -> (f64, Vec<f64>) {
        let l = self.layout;
        let hd = l.hidden;
        let mut grad = vec![0.0; l.len];
        let mut loss = 0.0;
        let n = windows.len().max(1) as f64;
        for (xs, target) in windows {
            let (y, caches, h_last) = self.forward(theta, xs);
            let err = y - target;
            loss += err * err / n;
            let dy = 2.0 * err / n;
            // Output layer.
            for k in 0..hd {
                grad[l.wy + k] += dy * h_last[k];
            }
            grad[l.by] += dy;
            let mut dh: Vec<f64> = (0..hd).map(|k| theta[l.wy + k] * dy).collect();
            let mut dc = vec![0.0; hd];
            // BPTT.
            for cache in caches.iter().rev() {
                let mut dz = vec![0.0; 4 * hd];
                for k in 0..hd {
                    let do_k = dh[k] * cache.tanh_c[k];
                    let dc_k =
                        dc[k] + dh[k] * cache.o[k] * (1.0 - cache.tanh_c[k] * cache.tanh_c[k]);
                    let di = dc_k * cache.g[k];
                    let df = dc_k * cache.c_prev[k];
                    let dg = dc_k * cache.i[k];
                    dz[k] = di * cache.i[k] * (1.0 - cache.i[k]);
                    dz[hd + k] = df * cache.f[k] * (1.0 - cache.f[k]);
                    dz[2 * hd + k] = dg * (1.0 - cache.g[k] * cache.g[k]);
                    dz[3 * hd + k] = do_k * cache.o[k] * (1.0 - cache.o[k]);
                    dc[k] = dc_k * cache.f[k]; // carries to c_{t-1}
                }
                let mut dh_prev = vec![0.0; hd];
                for k in 0..4 * hd {
                    let dzk = dz[k];
                    if dzk == 0.0 {
                        continue;
                    }
                    grad[l.wx + k] += dzk * cache.x;
                    grad[l.b + k] += dzk;
                    let row = l.wh + k * hd;
                    for j in 0..hd {
                        grad[row + j] += dzk * cache.h_prev[j];
                        dh_prev[j] += theta[row + j] * dzk;
                    }
                }
                dh = dh_prev;
            }
        }
        (loss, grad)
    }

    fn windows(&self, normed: &[f64]) -> Vec<(Vec<f64>, f64)> {
        let k = self.config.window;
        (k..normed.len()).map(|t| (normed[t - k..t].to_vec(), normed[t])).collect()
    }

    fn normalize(&self, v: f64) -> f64 {
        (v - self.norm_mean) / self.norm_std
    }

    fn denormalize(&self, v: f64) -> f64 {
        v * self.norm_std + self.norm_mean
    }
}

impl ForecastModel for LstmForecaster {
    fn name(&self) -> String {
        format!("lstm(K={},d={})", self.config.window, self.config.hidden)
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        if self.config.window == 0 || self.config.hidden == 0 {
            return Err(ForecastError::InvalidParam("window and hidden must be >= 1".to_string()));
        }
        let needed = self.config.window + 3;
        if series.len() < needed {
            return Err(ForecastError::TooShort { needed, got: series.len() });
        }
        self.norm_mean = mean(series);
        self.norm_std = std_dev(series).max(1e-9);
        let normed: Vec<f64> = series.iter().map(|v| self.normalize(*v)).collect();
        let windows = self.windows(&normed);
        self.init_weights();

        // Full-batch Adam.
        let mut m = vec![0.0; self.layout.len];
        let mut v = vec![0.0; self.layout.len];
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        let mut final_loss = f64::INFINITY;
        for step in 1..=self.config.epochs {
            let (loss, mut grad) = self.loss_and_grad(&self.theta, &windows);
            final_loss = loss;
            // Global norm clip.
            let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
            if norm > self.config.grad_clip {
                let scale = self.config.grad_clip / norm;
                for g in grad.iter_mut() {
                    *g *= scale;
                }
            }
            let lr = self.config.learning_rate;
            let bc1 = 1.0 - b1.powi(step as i32);
            let bc2 = 1.0 - b2.powi(step as i32);
            for k in 0..self.layout.len {
                m[k] = b1 * m[k] + (1.0 - b1) * grad[k];
                v[k] = b2 * v[k] + (1.0 - b2) * grad[k] * grad[k];
                let m_hat = m[k] / bc1;
                let v_hat = v[k] / bc2;
                self.theta[k] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        }
        if !final_loss.is_finite() {
            return Err(ForecastError::Numerical("LSTM training diverged".to_string()));
        }

        // Residual variance in original scale.
        let mut sse = 0.0;
        for (xs, target) in &windows {
            let (y, _, _) = self.forward(&self.theta, xs);
            let err = self.denormalize(y) - self.denormalize(*target);
            sse += err * err;
        }
        self.sigma2 = sse / windows.len().max(1) as f64;
        self.history = series.to_vec();
        self.fitted = true;
        Ok(FitSummary {
            sigma2: self.sigma2,
            log_likelihood: None,
            aic: None,
            num_params: self.layout.len,
            n_obs: windows.len(),
        })
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let k = self.config.window;
        let mut normed: Vec<f64> = self.history.iter().map(|x| self.normalize(*x)).collect();
        let mut means = Vec::with_capacity(horizon);
        for _ in 0..horizon {
            let xs = normed[normed.len() - k..].to_vec();
            let (y, _, _) = self.forward(&self.theta, &xs);
            normed.push(y);
            means.push(self.denormalize(y));
        }
        let sigma = self.sigma2.sqrt();
        let std_errs: Vec<f64> = (1..=horizon).map(|h| sigma * (h as f64).sqrt()).collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2: self.sigma2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_series(n: usize) -> Vec<f64> {
        (0..n).map(|t| 100.0 + 20.0 * (t as f64 * std::f64::consts::PI / 6.0).sin()).collect()
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let config = LstmConfig { window: 3, hidden: 2, epochs: 1, ..Default::default() };
        let mut model = LstmForecaster::new(config);
        model.init_weights();
        let windows = vec![
            (vec![0.5, -0.2, 0.1], 0.3),
            (vec![-0.2, 0.1, 0.3], -0.4),
            (vec![0.1, 0.3, -0.4], 0.2),
        ];
        let theta = model.theta.clone();
        let (_, grad) = model.loss_and_grad(&theta, &windows);
        let eps = 1e-6;
        for k in 0..theta.len() {
            let mut plus = theta.clone();
            plus[k] += eps;
            let mut minus = theta.clone();
            minus[k] -= eps;
            let (lp, _) = model.loss_and_grad(&plus, &windows);
            let (lm, _) = model.loss_and_grad(&minus, &windows);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (grad[k] - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                "param {k}: analytic {} vs numeric {numeric}",
                grad[k]
            );
        }
    }

    #[test]
    fn learns_a_sine_wave() {
        let series = sine_series(120);
        let mut model = LstmForecaster::new(LstmConfig { epochs: 400, ..Default::default() });
        model.fit(&series).unwrap();
        let f = model.forecast(12, 0.9).unwrap();
        // Compare against the true continuation.
        let truth: Vec<f64> = (120..132)
            .map(|t| 100.0 + 20.0 * (t as f64 * std::f64::consts::PI / 6.0).sin())
            .collect();
        let err = crate::metrics::mean_relative_error(&f.values(), &truth).unwrap();
        assert!(err < 0.08, "relative forecast error = {err}");
    }

    #[test]
    fn deterministic_given_seed() {
        let series = sine_series(60);
        let mut a = LstmForecaster::new(LstmConfig { epochs: 30, ..Default::default() });
        let mut b = LstmForecaster::new(LstmConfig { epochs: 30, ..Default::default() });
        a.fit(&series).unwrap();
        b.fit(&series).unwrap();
        assert_eq!(a.forecast(5, 0.9).unwrap().values(), b.forecast(5, 0.9).unwrap().values());
    }

    #[test]
    fn different_seed_changes_fit() {
        let series = sine_series(60);
        let mut a = LstmForecaster::new(LstmConfig { epochs: 10, seed: 1, ..Default::default() });
        let mut b = LstmForecaster::new(LstmConfig { epochs: 10, seed: 2, ..Default::default() });
        a.fit(&series).unwrap();
        b.fit(&series).unwrap();
        assert_ne!(a.forecast(1, 0.9).unwrap().values(), b.forecast(1, 0.9).unwrap().values());
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let series = vec![42.0; 40];
        let mut model = LstmForecaster::new(LstmConfig { epochs: 60, ..Default::default() });
        model.fit(&series).unwrap();
        let f = model.forecast(5, 0.9).unwrap();
        for p in &f.points {
            assert!((p.value - 42.0).abs() < 1.0, "forecast = {}", p.value);
        }
    }

    #[test]
    fn validation_errors() {
        let mut model = LstmForecaster::new(LstmConfig::default());
        assert!(matches!(model.fit(&[1.0; 5]), Err(ForecastError::TooShort { .. })));
        assert!(matches!(model.forecast(3, 0.9), Err(ForecastError::NotFitted)));
        let mut bad = LstmForecaster::new(LstmConfig { window: 0, ..Default::default() });
        assert!(bad.fit(&[1.0; 50]).is_err());
    }

    #[test]
    fn intervals_widen_with_horizon() {
        let series = sine_series(80);
        let mut model = LstmForecaster::new(LstmConfig { epochs: 50, ..Default::default() });
        model.fit(&series).unwrap();
        let f = model.forecast(7, 0.9).unwrap();
        for w in f.points.windows(2) {
            assert!(w[1].std_err > w[0].std_err);
        }
    }
}
