//! Statistical utilities: moments, autocorrelation, the standard normal
//! distribution (CDF and quantile), and a KPSS stationarity test used by
//! auto-ARIMA to pick the differencing order `d`.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by `n`); 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by `n − 1`); 0 for fewer than 2 points.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Standard deviation based on [`sample_variance`].
pub fn std_dev(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Autocorrelation function up to `max_lag` (inclusive); `acf[0] == 1`.
pub fn acf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    let mut out = Vec::with_capacity(max_lag + 1);
    if denom <= 0.0 || n == 0 {
        out.push(1.0);
        out.extend(std::iter::repeat_n(0.0, max_lag));
        return out;
    }
    for lag in 0..=max_lag {
        if lag >= n {
            out.push(0.0);
            continue;
        }
        let num: f64 = (lag..n).map(|t| (xs[t] - m) * (xs[t - lag] - m)).sum();
        out.push(num / denom);
    }
    out
}

/// Partial autocorrelation via the Durbin–Levinson recursion, lags
/// `1..=max_lag`.
pub fn pacf(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let rho = acf(xs, max_lag);
    let mut phi_prev: Vec<f64> = Vec::new();
    let mut out = Vec::with_capacity(max_lag);
    for k in 1..=max_lag {
        if k == 1 {
            phi_prev = vec![rho[1]];
            out.push(rho[1]);
            continue;
        }
        let num = rho[k] - (1..k).map(|j| phi_prev[j - 1] * rho[k - j]).sum::<f64>();
        let den = 1.0 - (1..k).map(|j| phi_prev[j - 1] * rho[j]).sum::<f64>();
        let phi_kk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        let mut phi_new = vec![0.0; k];
        for j in 1..k {
            phi_new[j - 1] = phi_prev[j - 1] - phi_kk * phi_prev[k - j - 1];
        }
        phi_new[k - 1] = phi_kk;
        out.push(phi_kk);
        phi_prev = phi_new;
    }
    out
}

/// Standard normal CDF via the error function (Abramowitz–Stegun 7.1.26,
/// |error| < 1.5e-7 — ample for interval construction).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal quantile (inverse CDF) using Acklam's rational
/// approximation (relative error < 1.15e-9). Panics outside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1), got {p}");
    // Coefficients from Peter Acklam's algorithm.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let q;
    if p < P_LOW {
        let u = (-2.0 * p.ln()).sqrt();
        q = (((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0);
    } else if p <= 1.0 - P_LOW {
        let u = p - 0.5;
        let r = u * u;
        q = (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * u
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0);
    } else {
        let u = (-2.0 * (1.0 - p).ln()).sqrt();
        q = -(((((C[0] * u + C[1]) * u + C[2]) * u + C[3]) * u + C[4]) * u + C[5])
            / ((((D[0] * u + D[1]) * u + D[2]) * u + D[3]) * u + 1.0);
    }
    q
}

/// Two-sided z value for a confidence level `gamma` (e.g. 0.9 → 1.645).
pub fn z_for_confidence(gamma: f64) -> f64 {
    assert!(gamma > 0.0 && gamma < 1.0, "confidence must be in (0,1)");
    normal_quantile(0.5 + gamma / 2.0)
}

/// KPSS statistic for level stationarity with Bartlett-window long-run
/// variance, bandwidth `⌊4 (n/100)^{1/4}⌋` — the default used by pmdarima's
/// `ndiffs` test.
pub fn kpss_level_statistic(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let e: Vec<f64> = xs.iter().map(|x| x - m).collect();
    let mut s = 0.0;
    let mut sum_s2 = 0.0;
    for v in &e {
        s += v;
        sum_s2 += s * s;
    }
    let lags = (4.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    let mut lrv: f64 = e.iter().map(|v| v * v).sum::<f64>() / n as f64;
    for l in 1..=lags.min(n - 1) {
        let w = 1.0 - l as f64 / (lags as f64 + 1.0);
        let gamma: f64 = (l..n).map(|t| e[t] * e[t - l]).sum::<f64>() / n as f64;
        lrv += 2.0 * w * gamma;
    }
    if lrv <= 0.0 {
        return 0.0;
    }
    sum_s2 / (n as f64 * n as f64 * lrv)
}

/// 5 % critical value of the level-stationarity KPSS test.
pub const KPSS_CRIT_5PCT: f64 = 0.463;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn acf_of_constant_series() {
        let out = acf(&[5.0; 20], 3);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn acf_lag0_is_one() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let out = acf(&xs, 5);
        assert!((out[0] - 1.0).abs() < 1e-12);
        assert!(out.iter().all(|r| r.abs() <= 1.0 + 1e-9));
    }

    #[test]
    fn pacf_of_ar1_cuts_off() {
        // AR(1) with phi = 0.8: pacf lag1 ≈ 0.8, lag ≥ 2 ≈ 0.
        let mut xs = vec![0.0f64; 2000];
        let mut state = 12345u64;
        for t in 1..xs.len() {
            // xorshift noise, deterministic.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            xs[t] = 0.8 * xs[t - 1] + u;
        }
        let p = pacf(&xs, 4);
        assert!((p[0] - 0.8).abs() < 0.1, "pacf lag1 = {}", p[0]);
        assert!(p[2].abs() < 0.1);
    }

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.95) - 1.644_854).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn z_for_confidence_90() {
        assert!((z_for_confidence(0.9) - 1.6449).abs() < 1e-3);
        assert!((z_for_confidence(0.95) - 1.96).abs() < 1e-3);
    }

    #[test]
    fn kpss_low_for_stationary_high_for_trend() {
        let mut state = 99u64;
        let mut noise = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let stationary: Vec<f64> = (0..300).map(|_| noise()).collect();
        let trending: Vec<f64> = (0..300).map(|i| i as f64 * 0.1 + noise()).collect();
        let s1 = kpss_level_statistic(&stationary);
        let s2 = kpss_level_statistic(&trending);
        assert!(s1 < KPSS_CRIT_5PCT, "stationary KPSS = {s1}");
        assert!(s2 > KPSS_CRIT_5PCT, "trending KPSS = {s2}");
    }
}
