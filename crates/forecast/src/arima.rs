//! ARIMA(p, d, q): the differencing wrapper of §2 — if `{∇^d M_t}` is
//! ARMA(p, q) then `{M_t}` is ARIMA(p, d, q). Forecasts of the differenced
//! series are integrated back; psi weights are integrated alongside so the
//! forecast intervals account for the accumulated uncertainty.

use crate::arma::{psi_weights, ArmaModel};
use crate::error::{check_finite, ForecastError};
use crate::model::{
    points_from_std_errs, validate_forecast_args, FitSummary, Forecast, ForecastModel,
};

/// Apply one first-order difference `∇M_t = M_t − M_{t−1}`.
pub fn difference(series: &[f64]) -> Vec<f64> {
    series.windows(2).map(|w| w[1] - w[0]).collect()
}

/// ARIMA(p, d, q) model: `d`-fold differencing around an [`ArmaModel`].
#[derive(Debug, Clone)]
pub struct ArimaModel {
    p: usize,
    d: usize,
    q: usize,
    inner: ArmaModel,
    /// Last observed value at each differencing level `0..d` (level 0 is
    /// the raw series); used to integrate forecasts back.
    level_tails: Vec<f64>,
    fitted: bool,
}

impl ArimaModel {
    /// New unfitted ARIMA(p, d, q).
    pub fn new(p: usize, d: usize, q: usize) -> Self {
        ArimaModel { p, d, q, inner: ArmaModel::new(p, q), level_tails: Vec::new(), fitted: false }
    }

    /// The model orders `(p, d, q)`.
    pub fn order(&self) -> (usize, usize, usize) {
        (self.p, self.d, self.q)
    }

    /// The inner ARMA fitted on the differenced series.
    pub fn inner(&self) -> &ArmaModel {
        &self.inner
    }

    /// Minimum series length needed.
    pub fn min_observations(&self) -> usize {
        self.inner.min_observations() + self.d
    }
}

impl ForecastModel for ArimaModel {
    fn name(&self) -> String {
        format!("arima({},{},{})", self.p, self.d, self.q)
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        if series.len() < self.min_observations() {
            return Err(ForecastError::TooShort {
                needed: self.min_observations(),
                got: series.len(),
            });
        }
        let mut current = series.to_vec();
        self.level_tails.clear();
        for _ in 0..self.d {
            self.level_tails.push(*current.last().expect("non-empty by length check"));
            current = difference(&current);
        }
        let summary = self.inner.fit(&current)?;
        self.fitted = true;
        Ok(summary)
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let base = self.inner.forecast(horizon, confidence)?;
        let mut means = base.values();
        // Integrate point forecasts back through each differencing level.
        for tail in self.level_tails.iter().rev() {
            let mut acc = *tail;
            for m in means.iter_mut() {
                acc += *m;
                *m = acc;
            }
        }
        // Integrate psi weights: dividing by (1−B)^d means d cumulative sums.
        let mut psi =
            psi_weights(self.inner.ar_coefficients(), self.inner.ma_coefficients(), horizon);
        for _ in 0..self.d {
            for j in 1..psi.len() {
                psi[j] += psi[j - 1];
            }
        }
        let sigma2 = self.inner.sigma2();
        let mut cum = 0.0;
        let std_errs: Vec<f64> = (0..horizon)
            .map(|h| {
                cum += psi[h] * psi[h];
                (sigma2 * cum).sqrt()
            })
            .collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{randn, simulate_arma, ArmaSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn difference_basics() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0]), vec![2.0, 3.0, 4.0]);
        assert!(difference(&[5.0]).is_empty());
    }

    #[test]
    fn d0_matches_arma() {
        let mut rng = StdRng::seed_from_u64(10);
        let spec = ArmaSpec { ar: vec![0.6], ma: vec![], mean: 20.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 500, &mut rng);
        let mut arima = ArimaModel::new(1, 0, 0);
        let mut arma = ArmaModel::new(1, 0);
        arima.fit(&series).unwrap();
        arma.fit(&series).unwrap();
        let fa = arima.forecast(7, 0.9).unwrap();
        let fb = arma.forecast(7, 0.9).unwrap();
        for (a, b) in fa.points.iter().zip(&fb.points) {
            assert!((a.value - b.value).abs() < 1e-9);
            assert!((a.std_err - b.std_err).abs() < 1e-9);
        }
    }

    #[test]
    fn captures_linear_trend_with_d1() {
        // y_t = 3t + AR(1) noise: first difference is stationary with mean 3.
        let mut rng = StdRng::seed_from_u64(11);
        let spec = ArmaSpec { ar: vec![0.3], ma: vec![], mean: 0.0, sigma: 0.5 };
        let noise = simulate_arma(&spec, 300, &mut rng);
        let series: Vec<f64> = noise.iter().enumerate().map(|(t, u)| 3.0 * t as f64 + u).collect();
        let mut model = ArimaModel::new(1, 1, 0);
        model.fit(&series).unwrap();
        let f = model.forecast(10, 0.9).unwrap();
        let last = series.last().unwrap();
        // Forecast must keep climbing by roughly 3 per step.
        for (h, p) in f.points.iter().enumerate() {
            let expected = last + 3.0 * (h as f64 + 1.0);
            assert!(
                (p.value - expected).abs() < 5.0,
                "h={h} forecast {} vs expected {expected}",
                p.value
            );
        }
    }

    #[test]
    fn random_walk_interval_grows_like_sqrt_h() {
        // ARIMA(0,1,0): Var[h] = h σ².
        let mut rng = StdRng::seed_from_u64(12);
        let mut series = vec![0.0f64];
        for _ in 0..400 {
            series.push(series.last().unwrap() + randn(&mut rng));
        }
        let mut model = ArimaModel::new(0, 1, 0);
        model.fit(&series).unwrap();
        let f = model.forecast(9, 0.9).unwrap();
        let se1 = f.points[0].std_err;
        let se9 = f.points[8].std_err;
        assert!((se9 / se1 - 3.0).abs() < 0.05, "ratio = {}", se9 / se1);
    }

    #[test]
    fn double_difference_reconstruction() {
        // Quadratic series: d=2 removes the trend entirely.
        let series: Vec<f64> = (0..60).map(|t| (t * t) as f64).collect();
        let mut model = ArimaModel::new(0, 2, 0);
        model.fit(&series).unwrap();
        let f = model.forecast(3, 0.9).unwrap();
        // ∇²(t²) = 2, so forecasts continue the quadratic exactly.
        for (h, p) in f.points.iter().enumerate() {
            let t = 60 + h;
            assert!((p.value - (t * t) as f64).abs() < 1e-6, "h={h}: {}", p.value);
        }
    }

    #[test]
    fn not_fitted_and_bad_args() {
        let model = ArimaModel::new(1, 1, 1);
        assert!(model.forecast(7, 0.9).is_err());
        let mut model = ArimaModel::new(1, 1, 1);
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        model.fit(&series).unwrap();
        assert!(model.forecast(0, 0.9).is_err());
        assert!(model.forecast(5, 1.5).is_err());
    }

    #[test]
    fn deterministic_quadratic_with_noise() {
        let mut rng = StdRng::seed_from_u64(13);
        let series: Vec<f64> =
            (0..200).map(|t| 0.1 * (t * t) as f64 + 5.0 * rng.gen::<f64>()).collect();
        let mut model = ArimaModel::new(1, 2, 1);
        model.fit(&series).unwrap();
        let f = model.forecast(5, 0.9).unwrap();
        assert!(f.points.iter().all(|p| p.value.is_finite()));
        // Growth should continue upward.
        assert!(f.points[4].value > *series.last().unwrap());
    }
}
