//! Automatic ARIMA order selection — the stand-in for the pmdarima /
//! X-13ARIMA-SEATS library used in the paper's deployment (§5): pick the
//! differencing order `d` by repeated KPSS tests, then search `(p, q)` with
//! the Hyndman–Khandakar stepwise procedure and select by corrected AIC.
//!
//! Two details differ from a textbook AIC comparison because our ARMA fits
//! use *conditional* sum of squares (residuals start at `t = p`):
//! * models of different `p` see different effective sample sizes, so the
//!   selection score is AICc *per effective observation*;
//! * the stepwise search (start at (2,2),(0,0),(1,0),(0,1), then walk to
//!   better neighbors) avoids the far corners of the grid where CSS +
//!   near-noninvertible MA roots can overfit in-sample noise.

use crate::arima::{difference, ArimaModel};
use crate::error::{check_finite, ForecastError};
use crate::model::{FitSummary, Forecast, ForecastModel};
use crate::stats::{kpss_level_statistic, KPSS_CRIT_5PCT};
use std::collections::HashSet;

/// Search space and selection options for [`AutoArima`].
#[derive(Debug, Clone, Copy)]
pub struct AutoArimaConfig {
    /// Maximum AR order searched (inclusive).
    pub max_p: usize,
    /// Maximum MA order searched (inclusive).
    pub max_q: usize,
    /// Maximum differencing order applied (inclusive).
    pub max_d: usize,
    /// KPSS critical value; difference while the statistic exceeds it.
    pub kpss_critical: f64,
    /// Use the stepwise (Hyndman–Khandakar) search; `false` fits the whole
    /// `(p, q)` grid, which is slower and more prone to CSS overfit.
    pub stepwise: bool,
}

impl Default for AutoArimaConfig {
    fn default() -> Self {
        AutoArimaConfig {
            max_p: 5,
            max_q: 5,
            max_d: 2,
            kpss_critical: KPSS_CRIT_5PCT,
            stepwise: true,
        }
    }
}

/// Choose the differencing order: difference until the KPSS level test no
/// longer rejects stationarity (or `max_d` is hit) — pmdarima's `ndiffs`.
pub fn select_d(series: &[f64], config: &AutoArimaConfig) -> usize {
    let mut current = series.to_vec();
    let mut d = 0;
    while d < config.max_d
        && current.len() > 10
        && kpss_level_statistic(&current) > config.kpss_critical
    {
        current = difference(&current);
        d += 1;
    }
    d
}

/// Auto-ARIMA: KPSS-selected `d`, stepwise `(p, q)` search, lowest
/// per-observation AICc wins.
#[derive(Debug, Clone)]
pub struct AutoArima {
    config: AutoArimaConfig,
    best: Option<ArimaModel>,
    best_score: f64,
}

impl AutoArima {
    /// New selector with the given search space.
    pub fn new(config: AutoArimaConfig) -> Self {
        AutoArima { config, best: None, best_score: f64::INFINITY }
    }

    /// The selected model's `(p, d, q)`, once fitted.
    pub fn selected_order(&self) -> Option<(usize, usize, usize)> {
        self.best.as_ref().map(|m| m.order())
    }

    /// Selection score (AICc per effective observation) of the best model.
    pub fn best_score(&self) -> Option<f64> {
        self.best.as_ref().map(|_| self.best_score)
    }
}

impl Default for AutoArima {
    fn default() -> Self {
        AutoArima::new(AutoArimaConfig::default())
    }
}

/// AICc per effective observation (see module docs for why we normalize).
fn score(summary: &FitSummary) -> f64 {
    let Some(aic) = summary.aic else { return f64::INFINITY };
    let k = summary.num_params as f64 + 1.0; // + sigma
    let n = summary.n_obs as f64;
    if n - k - 1.0 <= 0.0 {
        return f64::INFINITY;
    }
    (aic + 2.0 * k * (k + 1.0) / (n - k - 1.0)) / n
}

impl ForecastModel for AutoArima {
    fn name(&self) -> String {
        match self.selected_order() {
            Some((p, d, q)) => format!("auto_arima[{p},{d},{q}]"),
            None => "auto_arima".to_string(),
        }
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        let d = select_d(series, &self.config);
        self.best = None;
        self.best_score = f64::INFINITY;
        let mut best_summary: Option<FitSummary> = None;
        let mut last_err: Option<ForecastError> = None;
        let mut visited: HashSet<(usize, usize)> = HashSet::new();

        let mut try_order = |pq: (usize, usize),
                             this: &mut Self,
                             best_summary: &mut Option<FitSummary>,
                             last_err: &mut Option<ForecastError>|
         -> bool {
            let (p, q) = pq;
            if p > this.config.max_p || q > this.config.max_q || !visited.insert(pq) {
                return false;
            }
            let mut candidate = ArimaModel::new(p, d, q);
            match candidate.fit(series) {
                Ok(summary) => {
                    let s = score(&summary);
                    if s < this.best_score {
                        this.best_score = s;
                        this.best = Some(candidate);
                        *best_summary = Some(summary);
                        return true;
                    }
                    false
                }
                Err(e) => {
                    *last_err = Some(e);
                    false
                }
            }
        };

        if self.config.stepwise {
            // Hyndman–Khandakar starting set.
            for pq in [(2, 2), (0, 0), (1, 0), (0, 1)] {
                try_order(pq, self, &mut best_summary, &mut last_err);
            }
            while let Some((p, _, q)) = self.selected_order() {
                let mut improved = false;
                let neighbors = [
                    (p.wrapping_sub(1), q),
                    (p + 1, q),
                    (p, q.wrapping_sub(1)),
                    (p, q + 1),
                    (p.wrapping_sub(1), q.wrapping_sub(1)),
                    (p + 1, q + 1),
                    (p + 1, q.wrapping_sub(1)),
                    (p.wrapping_sub(1), q + 1),
                ];
                for n in neighbors {
                    if n.0 == usize::MAX || n.1 == usize::MAX {
                        continue;
                    }
                    improved |= try_order(n, self, &mut best_summary, &mut last_err);
                }
                if !improved {
                    break;
                }
            }
        } else {
            for p in 0..=self.config.max_p {
                for q in 0..=self.config.max_q {
                    try_order((p, q), self, &mut best_summary, &mut last_err);
                }
            }
        }

        match best_summary {
            Some(summary) => Ok(summary),
            None => Err(last_err.unwrap_or(ForecastError::Numerical(
                "no ARIMA candidate could be fitted".to_string(),
            ))),
        }
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        match &self.best {
            Some(model) => model.forecast(horizon, confidence),
            None => Err(ForecastError::NotFitted),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{simulate_arma, ArmaSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn selects_d0_for_stationary_series() {
        // KPSS has a 5% false-positive rate, so average over seeds.
        let mut d0_count = 0;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = ArmaSpec { ar: vec![0.4], ma: vec![], mean: 10.0, sigma: 1.0 };
            let series = simulate_arma(&spec, 300, &mut rng);
            if select_d(&series, &AutoArimaConfig::default()) == 0 {
                d0_count += 1;
            }
        }
        assert!(d0_count >= 8, "d=0 selected only {d0_count}/10 times");
    }

    #[test]
    fn selects_d1_for_trending_series() {
        let mut rng = StdRng::seed_from_u64(21);
        let spec = ArmaSpec { ar: vec![0.2], ma: vec![], mean: 0.0, sigma: 1.0 };
        let noise = simulate_arma(&spec, 300, &mut rng);
        let series: Vec<f64> = noise.iter().enumerate().map(|(t, u)| t as f64 + u).collect();
        assert!(select_d(&series, &AutoArimaConfig::default()) >= 1);
    }

    #[test]
    fn picks_reasonable_order_for_ar1() {
        // KPSS genuinely rejects stationarity for ~20% of phi=0.8 AR(1)
        // realizations at this length (matching R/pmdarima), so the seed
        // pins a realization the level test classifies as stationary.
        let mut rng = StdRng::seed_from_u64(42);
        let spec = ArmaSpec { ar: vec![0.8], ma: vec![], mean: 50.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 400, &mut rng);
        let mut auto = AutoArima::default();
        auto.fit(&series).unwrap();
        let (p, d, q) = auto.selected_order().unwrap();
        assert_eq!(d, 0);
        assert!(p >= 1 || q >= 1, "selected ({p},{d},{q}) for an AR(1)");
        let f = auto.forecast(7, 0.9).unwrap();
        assert_eq!(f.points.len(), 7);
        assert!(f.points.iter().all(|pt| pt.value.is_finite()));
    }

    #[test]
    fn stepwise_prefers_parsimony_on_white_noise() {
        let mut rng = StdRng::seed_from_u64(23);
        let spec = ArmaSpec { ar: vec![], ma: vec![], mean: 0.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 300, &mut rng);
        let mut auto = AutoArima::default();
        auto.fit(&series).unwrap();
        let (p, _, q) = auto.selected_order().unwrap();
        assert!(p + q <= 2, "white noise should select a tiny model, got ({p},{q})");
    }

    #[test]
    fn exhaustive_search_also_works() {
        let mut rng = StdRng::seed_from_u64(25);
        let spec = ArmaSpec { ar: vec![0.6], ma: vec![], mean: 0.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 300, &mut rng);
        let mut auto = AutoArima::new(AutoArimaConfig {
            stepwise: false,
            max_p: 2,
            max_q: 2,
            ..Default::default()
        });
        auto.fit(&series).unwrap();
        assert!(auto.best_score().unwrap().is_finite());
        assert!(auto.forecast(3, 0.9).is_ok());
    }

    #[test]
    fn unfitted_forecast_errors() {
        let auto = AutoArima::default();
        assert!(matches!(auto.forecast(5, 0.9), Err(ForecastError::NotFitted)));
    }

    #[test]
    fn name_includes_selected_order() {
        let mut rng = StdRng::seed_from_u64(24);
        let spec = ArmaSpec { ar: vec![0.5], ma: vec![], mean: 0.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 200, &mut rng);
        let mut auto = AutoArima::default();
        assert_eq!(auto.name(), "auto_arima");
        auto.fit(&series).unwrap();
        assert!(auto.name().starts_with("auto_arima["));
    }

    #[test]
    fn short_series_still_selects_something() {
        let mut rng = StdRng::seed_from_u64(26);
        let spec = ArmaSpec { ar: vec![0.3], ma: vec![], mean: 5.0, sigma: 1.0 };
        let series = simulate_arma(&spec, 30, &mut rng);
        let mut auto = AutoArima::default();
        auto.fit(&series).unwrap();
        assert!(auto.forecast(7, 0.9).is_ok());
    }
}
