//! Small dense linear algebra: just enough for least-squares fits of
//! low-order models (p, q ≤ 5, LSTM d = 4). Row-major `Matrix`, LU solve
//! with partial pivoting, and ordinary least squares via normal equations
//! with Tikhonov fallback.

use crate::error::ForecastError;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `self * v` for a column vector `v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out[r] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// `selfᵀ * v`.
    pub fn transpose_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "transpose_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * v[r];
            }
        }
        out
    }

    /// Gram matrix `selfᵀ * self` (used by OLS normal equations).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    let v = g.get(i, j) + ri * row[j];
                    g.set(i, j, v);
                }
            }
        }
        for i in 0..self.cols {
            for j in 0..i {
                let v = g.get(j, i);
                g.set(i, j, v);
            }
        }
        g
    }
}

/// Solve `A x = b` by LU decomposition with partial pivoting. `A` is
/// consumed. Fails on (numerically) singular systems.
pub fn solve(mut a: Matrix, mut b: Vec<f64>) -> Result<Vec<f64>, ForecastError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(ForecastError::Numerical(format!(
            "solve: shape mismatch ({}x{} vs rhs {})",
            a.rows(),
            a.cols(),
            b.len()
        )));
    }
    for k in 0..n {
        // Pivot selection.
        let mut pivot_row = k;
        let mut pivot_val = a.get(k, k).abs();
        for r in (k + 1)..n {
            let v = a.get(r, k).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return Err(ForecastError::Numerical("singular matrix in LU solve".to_string()));
        }
        if pivot_row != k {
            for c in 0..n {
                let tmp = a.get(k, c);
                a.set(k, c, a.get(pivot_row, c));
                a.set(pivot_row, c, tmp);
            }
            b.swap(k, pivot_row);
        }
        // Elimination.
        let diag = a.get(k, k);
        for r in (k + 1)..n {
            let factor = a.get(r, k) / diag;
            if factor == 0.0 {
                continue;
            }
            for c in k..n {
                let v = a.get(r, c) - factor * a.get(k, c);
                a.set(r, c, v);
            }
            b[r] -= factor * b[k];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let mut acc = b[k];
        for c in (k + 1)..n {
            acc -= a.get(k, c) * x[c];
        }
        x[k] = acc / a.get(k, k);
    }
    if x.iter().any(|v| !v.is_finite()) {
        return Err(ForecastError::Numerical("non-finite solution in LU solve".to_string()));
    }
    Ok(x)
}

/// Ordinary least squares: find `beta` minimizing `‖X beta − y‖²` via the
/// normal equations. If `XᵀX` is singular, retries with a small ridge
/// (Tikhonov) term — adequate for the low-order regressions used here.
pub fn least_squares(x: &Matrix, y: &[f64]) -> Result<Vec<f64>, ForecastError> {
    if x.rows() != y.len() {
        return Err(ForecastError::Numerical(format!(
            "least_squares: {} rows vs {} targets",
            x.rows(),
            y.len()
        )));
    }
    if x.rows() < x.cols() {
        return Err(ForecastError::TooShort { needed: x.cols(), got: x.rows() });
    }
    let gram = x.gram();
    let xty = x.transpose_matvec(y);
    match solve(gram.clone(), xty.clone()) {
        Ok(beta) => Ok(beta),
        Err(_) => {
            // Ridge fallback keeps Hannan–Rissanen robust on collinear lags.
            let mut ridged = gram;
            let scale = (0..ridged.rows()).map(|i| ridged.get(i, i)).fold(0.0, f64::max);
            let lambda = (scale * 1e-8).max(1e-10);
            for i in 0..ridged.rows() {
                let v = ridged.get(i, i) + lambda;
                ridged.set(i, i, v);
            }
            solve(ridged, xty)
        }
    }
}

/// Dot product helper.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solve_small_system() {
        // [2 1; 1 3] x = [3; 5] → x = [0.8, 1.4]
        let a = Matrix::from_fn(2, 2, |r, c| [[2.0, 1.0], [1.0, 3.0]][r][c]);
        let x = solve(a, vec![3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_fn(2, 2, |r, c| [[0.0, 1.0], [1.0, 0.0]][r][c]);
        let x = solve(a, vec![2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_fn(2, 2, |r, c| [[1.0, 2.0], [2.0, 4.0]][r][c]);
        assert!(solve(a, vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn least_squares_recovers_exact_fit() {
        // y = 2 + 3x, noiseless.
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let x = Matrix::from_fn(10, 2, |r, c| if c == 0 { 1.0 } else { xs[r] });
        let y: Vec<f64> = xs.iter().map(|v| 2.0 + 3.0 * v).collect();
        let beta = least_squares(&x, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_underdetermined_errors() {
        let x = Matrix::zeros(1, 3);
        assert!(matches!(least_squares(&x, &[1.0]), Err(ForecastError::TooShort { .. })));
    }

    #[test]
    fn gram_is_symmetric() {
        let x = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let g = x.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
        assert_eq!(m.transpose_matvec(&[1.0, 1.0]), vec![3.0, 5.0, 7.0]);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_round_trips(
            vals in proptest::collection::vec(-10.0f64..10.0, 9),
            rhs in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            let a = Matrix::from_fn(3, 3, |r, c| {
                // Diagonal dominance guarantees solvability.
                let base = vals[r * 3 + c];
                if r == c { base + 50.0 } else { base }
            });
            let x = solve(a.clone(), rhs.clone()).unwrap();
            let back = a.matvec(&x);
            for (orig, b) in rhs.iter().zip(back) {
                prop_assert!((orig - b).abs() < 1e-6);
            }
        }
    }
}
