//! # flashp-forecast
//!
//! Forecasting models for the FlashP pipeline (§2–§3 of the paper), built
//! from scratch:
//!
//! * [`arma`] — ARMA(p, q) fitted by conditional sum of squares
//!   (Hannan–Rissanen initialization + Nelder–Mead refinement over a
//!   stationarity-preserving PACF parameterization), with psi-weight
//!   forecast intervals;
//! * [`arima`] — ARIMA(p, d, q) differencing wrapper;
//! * [`auto_arima`] — pmdarima-style automatic order selection (KPSS-based
//!   `d`, AICc grid over `p`, `q`);
//! * [`lstm`] — the LSTM-based model of Fig. 4: an LSTM cell (output
//!   dimensionality `d = 4`) over a `K = 7` window of metric values,
//!   followed by a fully-connected layer; trained with Adam + BPTT;
//! * [`ets`] — exponential-smoothing extensions (SES / Holt / Holt–Winters);
//! * [`naive`] — naive, seasonal-naive and drift baselines;
//! * [`noise`] — the §3 analysis: Proposition 1's variance decomposition
//!   `Var[M̂] = a·σ_u² + σ_ε²` and noise-aware forecast intervals;
//! * [`simulate`] — ARMA process simulation used to validate the theory.
//!
//! Supporting numerics ([`linalg`], [`optimize`], [`stats`]) are
//! implemented here as well — model orders are tiny, so no external linear
//! algebra is needed.

pub mod ar;
pub mod arima;
pub mod arma;
pub mod auto_arima;
pub mod error;
pub mod ets;
pub mod linalg;
pub mod lstm;
pub mod metrics;
pub mod model;
pub mod naive;
pub mod noise;
pub mod optimize;
pub mod simulate;
pub mod stats;

pub use ar::ArModel;
pub use arima::ArimaModel;
pub use arma::ArmaModel;
pub use auto_arima::{AutoArima, AutoArimaConfig};
pub use error::ForecastError;
pub use ets::{EtsModel, EtsVariant};
pub use lstm::{LstmConfig, LstmForecaster};
pub use model::{Forecast, ForecastModel, ForecastPoint};
pub use naive::{DriftModel, NaiveModel, SeasonalNaiveModel};
