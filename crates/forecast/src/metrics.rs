//! Accuracy metrics used throughout the evaluation: the paper reports
//! *relative aggregation error* (estimate vs true per-day aggregate,
//! averaged over the training window) and *relative forecast error*
//! (forecast vs true future value, averaged over the horizon).

/// Relative error `|est − truth| / |truth|`; `None` when the truth is zero
/// (the ratio is undefined).
pub fn relative_error(est: f64, truth: f64) -> Option<f64> {
    if truth == 0.0 {
        return None;
    }
    Some((est - truth).abs() / truth.abs())
}

/// Mean relative error over paired slices, skipping zero-truth points.
/// Returns `None` if no point is usable.
pub fn mean_relative_error(ests: &[f64], truths: &[f64]) -> Option<f64> {
    assert_eq!(ests.len(), truths.len(), "metric input length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (e, t) in ests.iter().zip(truths) {
        if let Some(r) = relative_error(*e, *t) {
            sum += r;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Mean absolute percentage error (identical to mean relative error, in %).
pub fn mape(ests: &[f64], truths: &[f64]) -> Option<f64> {
    mean_relative_error(ests, truths).map(|v| v * 100.0)
}

/// Symmetric MAPE in percent: `200·|e−t| / (|e|+|t|)` averaged; defined
/// even when individual truths are zero (skips points where both are zero).
pub fn smape(ests: &[f64], truths: &[f64]) -> Option<f64> {
    assert_eq!(ests.len(), truths.len(), "metric input length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (e, t) in ests.iter().zip(truths) {
        let denom = e.abs() + t.abs();
        if denom > 0.0 {
            sum += 200.0 * (e - t).abs() / denom;
            n += 1;
        }
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Root mean squared error.
pub fn rmse(ests: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(ests.len(), truths.len(), "metric input length mismatch");
    if ests.is_empty() {
        return 0.0;
    }
    let mse: f64 =
        ests.iter().zip(truths).map(|(e, t)| (e - t) * (e - t)).sum::<f64>() / ests.len() as f64;
    mse.sqrt()
}

/// Mean absolute error.
pub fn mae(ests: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(ests.len(), truths.len(), "metric input length mismatch");
    if ests.is_empty() {
        return 0.0;
    }
    ests.iter().zip(truths).map(|(e, t)| (e - t).abs()).sum::<f64>() / ests.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), Some(0.1));
        assert_eq!(relative_error(90.0, 100.0), Some(0.1));
        assert_eq!(relative_error(5.0, 0.0), None);
        assert_eq!(relative_error(-90.0, -100.0), Some(0.1));
    }

    #[test]
    fn mean_relative_error_skips_zero_truths() {
        let m = mean_relative_error(&[110.0, 5.0, 50.0], &[100.0, 0.0, 100.0]).unwrap();
        assert!((m - (0.1 + 0.5) / 2.0).abs() < 1e-12);
        assert_eq!(mean_relative_error(&[1.0], &[0.0]), None);
    }

    #[test]
    fn rmse_and_mae() {
        let e = [1.0, 2.0, 3.0];
        let t = [1.0, 4.0, 3.0];
        assert!((rmse(&e, &t) - (4.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&e, &t) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn smape_bounded() {
        let s = smape(&[100.0], &[0.0]).unwrap();
        assert_eq!(s, 200.0); // maximal disagreement
        let s = smape(&[50.0], &[50.0]).unwrap();
        assert_eq!(s, 0.0);
        assert_eq!(smape(&[0.0], &[0.0]), None);
    }

    #[test]
    fn mape_is_percent() {
        assert!((mape(&[110.0], &[100.0]).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }
}
