//! The common forecasting-model interface of Eq. (2):
//! `M_t = f_t(M_{t−1}, …, M_{t−K})`, fitted on historical points and used
//! to forecast `FORE_PERIOD` future values with confidence intervals.

use crate::error::ForecastError;

/// One forecast point: `h` steps ahead, with a `confidence`-level interval
/// `[lo, hi]` (the paper's forecast interval, Fig. 3's dashed lines).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastPoint {
    /// Steps ahead of the last training point (1-based).
    pub step: usize,
    /// Point forecast `M̂_{t0+h|t0}`.
    pub value: f64,
    /// Lower bound of the forecast interval.
    pub lo: f64,
    /// Upper bound of the forecast interval.
    pub hi: f64,
    /// Standard error of the forecast at this horizon.
    pub std_err: f64,
}

/// A full forecast: points for `h = 1..=horizon` plus fit diagnostics.
#[derive(Debug, Clone)]
pub struct Forecast {
    pub points: Vec<ForecastPoint>,
    /// Confidence level used for the intervals (e.g. 0.9).
    pub confidence: f64,
    /// Estimated innovation variance of the fitted model (σ̂²).
    pub sigma2: f64,
}

impl Forecast {
    /// Just the point forecasts.
    pub fn values(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.value).collect()
    }

    /// Mean interval width (the quantity plotted in Fig. 12(a)).
    pub fn mean_interval_width(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.hi - p.lo).sum::<f64>() / self.points.len() as f64
    }
}

/// Summary statistics of a model fit.
#[derive(Debug, Clone, Default)]
pub struct FitSummary {
    /// Residual (innovation) variance estimate.
    pub sigma2: f64,
    /// Conditional Gaussian log-likelihood, if the model defines one.
    pub log_likelihood: Option<f64>,
    /// Akaike information criterion, if defined.
    pub aic: Option<f64>,
    /// Number of free parameters.
    pub num_params: usize,
    /// Number of observations used after differencing/windowing.
    pub n_obs: usize,
}

/// A forecasting model in the class of Eq. (2). Implementations must be
/// fitted before forecasting and may be refitted on new data.
pub trait ForecastModel {
    /// Short human-readable name (e.g. `"arima(1,1,1)"`).
    fn name(&self) -> String;

    /// Fit on the historical metric values `M_1..M_t0`, in time order.
    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError>;

    /// Forecast `horizon` future values with `confidence`-level intervals.
    /// Must be called after a successful [`ForecastModel::fit`].
    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError>;
}

/// Validate the common arguments of [`ForecastModel::forecast`].
pub fn validate_forecast_args(horizon: usize, confidence: f64) -> Result<(), ForecastError> {
    if horizon == 0 {
        return Err(ForecastError::InvalidParam("horizon must be >= 1".to_string()));
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(ForecastError::InvalidParam(format!(
            "confidence must be in (0,1), got {confidence}"
        )));
    }
    Ok(())
}

/// Build interval-bearing forecast points from means and standard errors.
pub fn points_from_std_errs(
    means: &[f64],
    std_errs: &[f64],
    confidence: f64,
) -> Vec<ForecastPoint> {
    let z = crate::stats::z_for_confidence(confidence);
    means
        .iter()
        .zip(std_errs)
        .enumerate()
        .map(|(i, (m, se))| ForecastPoint {
            step: i + 1,
            value: *m,
            lo: m - z * se,
            hi: m + z * se,
            std_err: *se,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_width() {
        let points = points_from_std_errs(&[10.0, 20.0], &[1.0, 2.0], 0.9);
        let f = Forecast { points, confidence: 0.9, sigma2: 1.0 };
        assert_eq!(f.values(), vec![10.0, 20.0]);
        // width = 2 z σ; z(0.9) ≈ 1.645 → widths ≈ 3.29 and 6.58, mean 4.93.
        assert!((f.mean_interval_width() - 4.934).abs() < 0.01);
    }

    #[test]
    fn validation() {
        assert!(validate_forecast_args(0, 0.9).is_err());
        assert!(validate_forecast_args(5, 0.0).is_err());
        assert!(validate_forecast_args(5, 1.0).is_err());
        assert!(validate_forecast_args(5, 0.9).is_ok());
    }

    #[test]
    fn points_are_symmetric_around_mean() {
        let pts = points_from_std_errs(&[5.0], &[2.0], 0.95);
        let p = pts[0];
        assert!(((p.hi - p.value) - (p.value - p.lo)).abs() < 1e-12);
        assert_eq!(p.step, 1);
        assert_eq!(p.std_err, 2.0);
    }
}
