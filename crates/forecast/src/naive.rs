//! Naive baselines: last-value, seasonal-naive and drift forecasts. The
//! paper plugs arbitrary models into the pipeline ("Other forecasting
//! models can be plugged in here, too", §5); these are the standard cheap
//! baselines and are also useful as sanity anchors in tests.

use crate::error::{check_finite, ForecastError};
use crate::model::{
    points_from_std_errs, validate_forecast_args, FitSummary, Forecast, ForecastModel,
};
use crate::stats::sample_variance;

/// Forecast every horizon with the last observed value. Standard error at
/// horizon `h` is `σ√h` with σ estimated from one-step differences (the
/// random-walk model's exact forecast distribution).
#[derive(Debug, Clone, Default)]
pub struct NaiveModel {
    last: f64,
    sigma2: f64,
    fitted: bool,
}

impl NaiveModel {
    pub fn new() -> Self {
        Self::default()
    }
}

impl ForecastModel for NaiveModel {
    fn name(&self) -> String {
        "naive".to_string()
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        if series.len() < 2 {
            return Err(ForecastError::TooShort { needed: 2, got: series.len() });
        }
        self.last = *series.last().expect("length checked");
        let diffs: Vec<f64> = series.windows(2).map(|w| w[1] - w[0]).collect();
        self.sigma2 = sample_variance(&diffs);
        self.fitted = true;
        Ok(FitSummary {
            sigma2: self.sigma2,
            log_likelihood: None,
            aic: None,
            num_params: 0,
            n_obs: series.len(),
        })
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let means = vec![self.last; horizon];
        let std_errs: Vec<f64> = (1..=horizon).map(|h| (self.sigma2 * h as f64).sqrt()).collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2: self.sigma2,
        })
    }
}

/// Forecast with the value observed one season (`period`) ago.
#[derive(Debug, Clone)]
pub struct SeasonalNaiveModel {
    period: usize,
    last_season: Vec<f64>,
    sigma2: f64,
    fitted: bool,
}

impl SeasonalNaiveModel {
    /// New model with season length `period` (e.g. 7 for weekly patterns in
    /// daily data).
    pub fn new(period: usize) -> Self {
        SeasonalNaiveModel { period, last_season: Vec::new(), sigma2: 0.0, fitted: false }
    }
}

impl ForecastModel for SeasonalNaiveModel {
    fn name(&self) -> String {
        format!("seasonal_naive({})", self.period)
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        if self.period == 0 {
            return Err(ForecastError::InvalidParam("period must be >= 1".to_string()));
        }
        if series.len() < 2 * self.period {
            return Err(ForecastError::TooShort { needed: 2 * self.period, got: series.len() });
        }
        self.last_season = series[series.len() - self.period..].to_vec();
        let seasonal_diffs: Vec<f64> =
            (self.period..series.len()).map(|t| series[t] - series[t - self.period]).collect();
        self.sigma2 = sample_variance(&seasonal_diffs);
        self.fitted = true;
        Ok(FitSummary {
            sigma2: self.sigma2,
            log_likelihood: None,
            aic: None,
            num_params: 0,
            n_obs: series.len(),
        })
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let means: Vec<f64> = (0..horizon).map(|h| self.last_season[h % self.period]).collect();
        let std_errs: Vec<f64> = (0..horizon)
            .map(|h| {
                let k = (h / self.period + 1) as f64; // completed seasonal cycles
                (self.sigma2 * k).sqrt()
            })
            .collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2: self.sigma2,
        })
    }
}

/// Random walk with drift: extrapolate the average historical slope.
#[derive(Debug, Clone, Default)]
pub struct DriftModel {
    last: f64,
    slope: f64,
    sigma2: f64,
    n: usize,
    fitted: bool,
}

impl DriftModel {
    pub fn new() -> Self {
        Self::default()
    }
}

impl ForecastModel for DriftModel {
    fn name(&self) -> String {
        "drift".to_string()
    }

    fn fit(&mut self, series: &[f64]) -> Result<FitSummary, ForecastError> {
        check_finite(series)?;
        if series.len() < 3 {
            return Err(ForecastError::TooShort { needed: 3, got: series.len() });
        }
        let n = series.len();
        self.last = series[n - 1];
        self.slope = (series[n - 1] - series[0]) / (n - 1) as f64;
        let diffs: Vec<f64> = series.windows(2).map(|w| w[1] - w[0]).collect();
        self.sigma2 = sample_variance(&diffs);
        self.n = n;
        self.fitted = true;
        Ok(FitSummary {
            sigma2: self.sigma2,
            log_likelihood: None,
            aic: None,
            num_params: 1,
            n_obs: n,
        })
    }

    fn forecast(&self, horizon: usize, confidence: f64) -> Result<Forecast, ForecastError> {
        if !self.fitted {
            return Err(ForecastError::NotFitted);
        }
        validate_forecast_args(horizon, confidence)?;
        let means: Vec<f64> = (1..=horizon).map(|h| self.last + self.slope * h as f64).collect();
        let std_errs: Vec<f64> = (1..=horizon)
            .map(|h| {
                let h = h as f64;
                (self.sigma2 * h * (1.0 + h / (self.n - 1) as f64)).sqrt()
            })
            .collect();
        Ok(Forecast {
            points: points_from_std_errs(&means, &std_errs, confidence),
            confidence,
            sigma2: self.sigma2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_repeats_last_value() {
        let mut m = NaiveModel::new();
        // Non-constant differences so σ² > 0 and the √h law is observable.
        m.fit(&[1.0, 3.0, 2.0, 4.0]).unwrap();
        let f = m.forecast(3, 0.9).unwrap();
        assert!(f.points.iter().all(|p| p.value == 4.0));
        let r = f.points[2].std_err / f.points[0].std_err;
        assert!((r - 3.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn seasonal_naive_repeats_cycle() {
        // Seasonal diffs vary (1, 2, 3) so σ² > 0.
        let series = [10.0, 20.0, 30.0, 11.0, 22.0, 33.0];
        let mut m = SeasonalNaiveModel::new(3);
        m.fit(&series).unwrap();
        let f = m.forecast(6, 0.9).unwrap();
        assert_eq!(f.values(), vec![11.0, 22.0, 33.0, 11.0, 22.0, 33.0]);
        // Second cycle is more uncertain than the first.
        assert!(f.points[3].std_err > f.points[0].std_err);
    }

    #[test]
    fn drift_extrapolates_slope() {
        let series: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        let mut m = DriftModel::new();
        m.fit(&series).unwrap();
        let f = m.forecast(5, 0.9).unwrap();
        for (h, p) in f.points.iter().enumerate() {
            assert!((p.value - (98.0 + 2.0 * (h as f64 + 1.0))).abs() < 1e-9);
        }
    }

    #[test]
    fn validation_errors() {
        assert!(NaiveModel::new().fit(&[1.0]).is_err());
        assert!(SeasonalNaiveModel::new(0).fit(&[1.0; 10]).is_err());
        assert!(SeasonalNaiveModel::new(7).fit(&[1.0; 10]).is_err());
        assert!(DriftModel::new().fit(&[1.0, 2.0]).is_err());
        assert!(NaiveModel::new().forecast(1, 0.9).is_err());
    }
}
