//! Smoke tests for every forecasting-model family: each model fits a
//! deterministic seasonal series (weekly cycle + mild trend + fixed-seed
//! noise — the shape of the paper's ads traffic) and must produce finite
//! point forecasts with non-degenerate confidence intervals.

use flashp_forecast::model::ForecastModel;
use flashp_forecast::{
    ArModel, ArimaModel, ArmaModel, AutoArima, DriftModel, EtsModel, EtsVariant, NaiveModel,
    SeasonalNaiveModel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 120;
const HORIZON: usize = 7;
const CONFIDENCE: f64 = 0.9;

/// Weekly-seasonal series with trend and fixed-seed noise; identical on
/// every run.
fn seasonal_series() -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(2020);
    (0..N)
        .map(|t| {
            let trend = 1000.0 + 2.0 * t as f64;
            let season = 150.0 * (2.0 * std::f64::consts::PI * (t % 7) as f64 / 7.0).sin();
            let noise = 20.0 * (rng.gen::<f64>() - 0.5);
            trend + season + noise
        })
        .collect()
}

fn models() -> Vec<Box<dyn ForecastModel>> {
    vec![
        Box::new(ArModel::new(7)),
        Box::new(ArmaModel::new(2, 1)),
        Box::new(ArimaModel::new(1, 1, 1)),
        Box::new(AutoArima::default()),
        Box::new(EtsModel::new(EtsVariant::Simple)),
        Box::new(EtsModel::new(EtsVariant::Holt)),
        Box::new(EtsModel::new(EtsVariant::HoltWinters { period: 7 })),
        Box::new(NaiveModel::new()),
        Box::new(SeasonalNaiveModel::new(7)),
        Box::new(DriftModel::new()),
    ]
}

#[test]
fn every_model_fits_and_forecasts_finitely() {
    let series = seasonal_series();
    for mut model in models() {
        let summary =
            model.fit(&series).unwrap_or_else(|e| panic!("{} failed to fit: {e}", model.name()));
        assert!(summary.sigma2.is_finite() && summary.sigma2 >= 0.0, "{}", model.name());
        assert!(summary.n_obs > 0, "{} reported zero observations", model.name());

        let f = model.forecast(HORIZON, CONFIDENCE).unwrap();
        assert_eq!(f.points.len(), HORIZON, "{}", model.name());
        assert_eq!(f.confidence, CONFIDENCE, "{}", model.name());
        for (i, p) in f.points.iter().enumerate() {
            let name = model.name();
            assert_eq!(p.step, i + 1, "{name}");
            assert!(p.value.is_finite(), "{name} step {i}: non-finite point forecast");
            assert!(p.lo.is_finite() && p.hi.is_finite(), "{name} step {i}: non-finite bound");
            // Non-degenerate interval containing the point forecast.
            assert!(p.hi > p.lo, "{name} step {i}: degenerate interval [{}, {}]", p.lo, p.hi);
            assert!(p.lo <= p.value && p.value <= p.hi, "{name} step {i}: point outside interval");
            assert!(p.std_err > 0.0, "{name} step {i}: zero std error");
        }
    }
}

#[test]
fn forecasts_stay_near_the_series_scale() {
    // Point forecasts of a ~1000–1400 series must not run away; this
    // catches sign/scale bugs that finite-ness checks miss.
    let series = seasonal_series();
    let last = *series.last().unwrap();
    for mut model in models() {
        model.fit(&series).unwrap();
        let f = model.forecast(HORIZON, CONFIDENCE).unwrap();
        for p in &f.points {
            assert!(
                (p.value - last).abs() < 1000.0,
                "{} drifted to {} (last train value {})",
                model.name(),
                p.value,
                last
            );
        }
    }
}

#[test]
fn interval_width_grows_with_horizon_for_stochastic_models() {
    // σ_h is non-decreasing in h for AR/ARMA/ARIMA psi-weight intervals.
    let series = seasonal_series();
    for mut model in [
        Box::new(ArModel::new(3)) as Box<dyn ForecastModel>,
        Box::new(ArmaModel::new(1, 1)),
        Box::new(ArimaModel::new(0, 1, 1)),
    ] {
        model.fit(&series).unwrap();
        let f = model.forecast(14, CONFIDENCE).unwrap();
        for w in f.points.windows(2) {
            assert!(
                w[1].std_err >= w[0].std_err - 1e-9,
                "{}: std_err shrank from {} to {}",
                model.name(),
                w[0].std_err,
                w[1].std_err
            );
        }
    }
}

#[test]
fn wider_confidence_means_wider_intervals() {
    let series = seasonal_series();
    for mut model in models() {
        model.fit(&series).unwrap();
        let narrow = model.forecast(HORIZON, 0.5).unwrap().mean_interval_width();
        let wide = model.forecast(HORIZON, 0.99).unwrap().mean_interval_width();
        assert!(
            wide > narrow,
            "{}: 99% interval ({wide}) not wider than 50% ({narrow})",
            model.name()
        );
    }
}

#[test]
fn seasonal_models_track_the_cycle() {
    // Holt–Winters and seasonal-naive must reproduce the weekly pattern:
    // the forecast's max-min spread should be comparable to the seasonal
    // amplitude (300), not flattened to the mean.
    let series = seasonal_series();
    for mut model in [
        Box::new(EtsModel::new(EtsVariant::HoltWinters { period: 7 })) as Box<dyn ForecastModel>,
        Box::new(SeasonalNaiveModel::new(7)),
    ] {
        model.fit(&series).unwrap();
        let f = model.forecast(7, CONFIDENCE).unwrap();
        let values = f.values();
        let spread = values.iter().cloned().fold(f64::MIN, f64::max)
            - values.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 100.0, "{} flattened the weekly cycle (spread {spread:.1})", model.name());
    }
}

#[test]
fn refitting_on_new_data_replaces_the_old_fit() {
    let series = seasonal_series();
    let mut model = ArModel::new(2);
    model.fit(&series).unwrap();
    let f1 = model.forecast(3, CONFIDENCE).unwrap();
    let shifted: Vec<f64> = series.iter().map(|v| v + 5000.0).collect();
    model.fit(&shifted).unwrap();
    let f2 = model.forecast(3, CONFIDENCE).unwrap();
    assert!(
        (f2.points[0].value - f1.points[0].value) > 2500.0,
        "refit ignored the new series: {} vs {}",
        f1.points[0].value,
        f2.points[0].value
    );
}
