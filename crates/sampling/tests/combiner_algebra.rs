//! Property suite for the scatter-gather combiner algebra.
//!
//! The sharded engine merges per-shard partials — exact
//! [`AggState`]s and Horvitz–Thompson [`EstimateComponents`] — by
//! component-wise addition, then finalizes once (AVG as the ratio of the
//! merged totals). These properties pin down why that is correct at any
//! shard count:
//!
//! * partition-invariance: folding rows shard-by-shard and merging the
//!   shard partials in order equals folding the concatenated rows — **bit
//!   for bit** when every HT term is exactly representable (integer
//!   measures, power-of-two inclusion probabilities make `m/π` and
//!   `(1/π² − 1/π)·m²` integers), and to relative tolerance for arbitrary
//!   floats (addition reassociates);
//! * edge cases: empty shards are merge identities, single-row shards
//!   compose, an all-empty merge finalizes like an untouched accumulator
//!   (AVG of nothing is NaN);
//! * finalize algebra: AVG is exactly `sum_hat / count_hat` of the merged
//!   components (never a mean of per-shard AVGs), SUM/COUNT pass the
//!   merged variance component through unchanged.

use flashp_sampling::EstimateComponents;
use flashp_storage::{AggFunc, AggState};
use proptest::prelude::*;

/// Exactly representable inclusion probabilities: `1/π` ∈ {1, 2, 4, 8}
/// and the HT variance weight `1/π² − 1/π` ∈ {0, 2, 12, 56} are integers,
/// so every per-row term (integer measure) is exact in f64 and addition
/// is associative.
const EXACT_PI: [f64; 4] = [1.0, 0.5, 0.25, 0.125];

/// Accumulate one sampled row into HT components, mirroring the
/// estimator's `w = 1/π` / `w² − w` accumulation.
fn accumulate(c: &mut EstimateComponents, measure: f64, pi: f64) {
    let w = 1.0 / pi;
    let vw = w * w - w;
    c.sum_hat += w * measure;
    c.sum_var += vw * measure * measure;
    c.count_hat += w;
    c.count_var += vw;
    c.matched_rows += 1;
}

fn components_of(rows: &[(f64, f64)]) -> EstimateComponents {
    let mut c = EstimateComponents::default();
    for &(m, pi) in rows {
        accumulate(&mut c, m, pi);
    }
    c
}

fn state_of(rows: &[f64]) -> AggState {
    let mut s = AggState::default();
    for &m in rows {
        s.sum += m;
        s.count += 1;
    }
    s
}

/// Split `rows` into `cuts.len() + 1` contiguous shards (order-preserving,
/// shards may be empty) — the shape of a slot-order merge.
fn contiguous_shards<T: Clone>(rows: &[T], cuts: &[usize]) -> Vec<Vec<T>> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (rows.len() + 1)).collect();
    bounds.sort_unstable();
    let mut shards = Vec::with_capacity(bounds.len() + 1);
    let mut prev = 0;
    for b in bounds {
        shards.push(rows[prev..b].to_vec());
        prev = b;
    }
    shards.push(rows[prev..].to_vec());
    shards
}

fn exact_row() -> impl Strategy<Value = (f64, f64)> {
    (0u32..=1000, 0usize..EXACT_PI.len()).prop_map(|(m, i)| (f64::from(m), EXACT_PI[i]))
}

fn assert_components_bitwise(a: &EstimateComponents, b: &EstimateComponents) {
    assert_eq!(a.sum_hat.to_bits(), b.sum_hat.to_bits(), "sum_hat");
    assert_eq!(a.sum_var.to_bits(), b.sum_var.to_bits(), "sum_var");
    assert_eq!(a.count_hat.to_bits(), b.count_hat.to_bits(), "count_hat");
    assert_eq!(a.count_var.to_bits(), b.count_var.to_bits(), "count_var");
    assert_eq!(a.matched_rows, b.matched_rows, "matched_rows");
}

proptest! {
    /// Sharded merge ≡ concatenated fold, bit for bit, for any contiguous
    /// partition (including empty and single-row shards) of exactly
    /// representable rows.
    #[test]
    fn components_merge_is_partition_invariant(
        rows in proptest::collection::vec(exact_row(), 0..200),
        cuts in proptest::collection::vec(0usize..usize::MAX, 0..7),
    ) {
        let concatenated = components_of(&rows);
        let mut merged = EstimateComponents::default();
        for shard in contiguous_shards(&rows, &cuts) {
            let partial = components_of(&shard);
            merged.merge(&partial);
        }
        assert_components_bitwise(&merged, &concatenated);
    }

    /// Same partition-invariance for the exact accumulator.
    #[test]
    fn agg_state_merge_is_partition_invariant(
        rows in proptest::collection::vec((0u32..=1000).prop_map(f64::from), 0..200),
        cuts in proptest::collection::vec(0usize..usize::MAX, 0..7),
    ) {
        let concatenated = state_of(&rows);
        let mut merged = AggState::default();
        for shard in contiguous_shards(&rows, &cuts) {
            merged.merge(state_of(&shard));
        }
        assert_eq!(merged.sum.to_bits(), concatenated.sum.to_bits());
        assert_eq!(merged.count, concatenated.count);
        for agg in [AggFunc::Sum, AggFunc::Count, AggFunc::Avg] {
            let a = merged.finalize(agg);
            let b = concatenated.finalize(agg);
            assert!(a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()));
        }
    }

    /// With arbitrary finite float measures the merge only reassociates
    /// additions: equal to tight relative tolerance.
    #[test]
    fn components_merge_is_tolerant_for_arbitrary_floats(
        rows in proptest::collection::vec(
            ((-1.0e6f64..1.0e6), 0usize..EXACT_PI.len())
                .prop_map(|(m, i)| (m, EXACT_PI[i])),
            0..200,
        ),
        cuts in proptest::collection::vec(0usize..usize::MAX, 0..7),
    ) {
        let concatenated = components_of(&rows);
        let mut merged = EstimateComponents::default();
        for shard in contiguous_shards(&rows, &cuts) {
            merged.merge(&components_of(&shard));
        }
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        prop_assert!(close(merged.sum_hat, concatenated.sum_hat));
        prop_assert!(close(merged.sum_var, concatenated.sum_var));
        prop_assert!(close(merged.count_hat, concatenated.count_hat));
        prop_assert!(close(merged.count_var, concatenated.count_var));
        prop_assert_eq!(merged.matched_rows, concatenated.matched_rows);
    }

    /// Merging a default (empty-shard) partial is the identity, bit for
    /// bit, even for arbitrary component values.
    #[test]
    fn merging_empty_shard_is_identity(
        sum_hat in -1.0e12f64..1.0e12,
        sum_var in 0.0f64..1.0e12,
        count_hat in 0.0f64..1.0e9,
        count_var in 0.0f64..1.0e9,
        matched in 0usize..1_000_000,
    ) {
        let original = EstimateComponents {
            sum_hat, sum_var, count_hat, count_var, matched_rows: matched,
        };
        let mut merged = original;
        merged.merge(&EstimateComponents::default());
        assert_components_bitwise(&merged, &original);

        // And from the left: identity ⊕ x = x.
        let mut left = EstimateComponents::default();
        left.merge(&original);
        assert_components_bitwise(&left, &original);
    }

    /// AVG finalizes as the ratio of *merged* totals — exactly
    /// `sum_hat / count_hat`, not any combination of per-shard averages —
    /// and SUM/COUNT pass the merged variance through unchanged.
    #[test]
    fn finalize_algebra_on_merged_components(
        rows in proptest::collection::vec(exact_row(), 1..200),
        cuts in proptest::collection::vec(0usize..usize::MAX, 0..7),
    ) {
        let mut merged = EstimateComponents::default();
        for shard in contiguous_shards(&rows, &cuts) {
            merged.merge(&components_of(&shard));
        }
        let avg = merged.finalize(AggFunc::Avg);
        assert_eq!(avg.value.to_bits(), (merged.sum_hat / merged.count_hat).to_bits());
        assert_eq!(avg.variance, None);
        let sum = merged.finalize(AggFunc::Sum);
        assert_eq!(sum.value.to_bits(), merged.sum_hat.to_bits());
        assert_eq!(sum.variance.map(f64::to_bits), Some(merged.sum_var.to_bits()));
        let count = merged.finalize(AggFunc::Count);
        assert_eq!(count.value.to_bits(), merged.count_hat.to_bits());
        assert_eq!(count.variance.map(f64::to_bits), Some(merged.count_var.to_bits()));
        assert_eq!(sum.matched_rows, rows.len());
    }
}

/// An all-empty merge finalizes like an untouched accumulator: AVG of
/// nothing is NaN, SUM/COUNT are zero with zero variance.
#[test]
fn empty_merge_finalizes_like_empty() {
    let mut merged = EstimateComponents::default();
    for _ in 0..4 {
        merged.merge(&EstimateComponents::default());
    }
    assert!(merged.finalize(AggFunc::Avg).value.is_nan());
    assert_eq!(merged.finalize(AggFunc::Sum).value, 0.0);
    assert_eq!(merged.finalize(AggFunc::Sum).variance, Some(0.0));
    assert_eq!(merged.finalize(AggFunc::Count).value, 0.0);
    assert_eq!(merged.matched_rows, 0);

    let mut state = AggState::default();
    state.merge(AggState::default());
    assert!(state.finalize(AggFunc::Avg).is_nan());
    assert_eq!(state.finalize(AggFunc::Sum), 0.0);
    assert_eq!(state.finalize(AggFunc::Count), 0.0);
}
