//! Property-style unbiasedness checks for every sampler family.
//!
//! §4's central claim is that the calibrated subset-sum estimator is
//! unbiased under *any* constraint chosen online. These tests verify it
//! empirically on a fixed-seed synthetic partition with a heavy right
//! tail (the regime the paper targets): over many independent sample
//! draws, the mean estimate must sit within a few standard errors of the
//! exact aggregate, for GSW (optimal and both compressed variants),
//! uniform, priority, and threshold sampling alike.

use flashp_sampling::{
    estimate_agg, GswSampler, PrioritySampler, SampleSize, Sampler, ThresholdSampler,
    UniformSampler,
};
use flashp_storage::{
    AggFunc, CmpOp, CompiledPredicate, DataType, DimensionColumn, Partition, Predicate, Schema,
    SchemaRef,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 4_000;
const REPS: usize = 300;

/// A two-measure partition with ~1% heavy-tail rows and a `seg` dimension
/// for selective predicates. Fixed seed → identical across runs.
fn heavy_tail_partition() -> (SchemaRef, Partition) {
    let schema =
        Schema::from_names(&[("seg", DataType::Int64)], &["m1", "m2"]).unwrap().into_shared();
    let mut rng = StdRng::seed_from_u64(0xF1A5);
    let seg: Vec<i64> = (0..ROWS).map(|_| rng.gen_range(0..100i64)).collect();
    let m1: Vec<f64> = (0..ROWS)
        .map(|_| {
            if rng.gen::<f64>() < 0.01 {
                400.0 + 100.0 * rng.gen::<f64>()
            } else {
                1.0 + rng.gen::<f64>()
            }
        })
        .collect();
    // m2 correlated with m1 (the compressed-GSW use case).
    let m2: Vec<f64> = m1.iter().map(|v| v * (0.5 + rng.gen::<f64>())).collect();
    let p = Partition::from_columns(vec![DimensionColumn::Int64(seg)], vec![m1, m2]).unwrap();
    (schema, p)
}

fn compile(schema: &SchemaRef, pred: Predicate) -> CompiledPredicate {
    pred.compile(schema, &[None]).unwrap()
}

fn seg_column(partition: &Partition) -> &[i64] {
    match partition.dim(0) {
        DimensionColumn::Int64(seg) => seg,
        other => panic!("seg must be Int64, got {other:?}"),
    }
}

fn exact_sum(partition: &Partition, measure: usize, keep: impl Fn(i64) -> bool) -> f64 {
    partition
        .measure(measure)
        .iter()
        .zip(seg_column(partition))
        .filter(|(_, s)| keep(**s))
        .map(|(m, _)| m)
        .sum()
}

/// Mean of `REPS` independent estimates must be within 4 standard errors
/// of the truth (a 4σ bound keeps the fixed-seed test far from flaky
/// while still catching any systematic bias ≳ 1σ/√REPS).
fn assert_unbiased(sampler: &dyn Sampler, measure: usize, pred: &CompiledPredicate, truth: f64) {
    let (schema, partition) = heavy_tail_partition();
    let mut rng = StdRng::seed_from_u64(7_777);
    let mut estimates = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let sample = sampler.sample(&schema, &partition, &mut rng).unwrap();
        let est = estimate_agg(&sample, measure, pred, AggFunc::Sum).unwrap();
        assert!(est.value.is_finite(), "{} produced a non-finite estimate", sampler.name());
        estimates.push(est.value);
    }
    let mean = estimates.iter().sum::<f64>() / REPS as f64;
    let var = estimates.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / (REPS - 1) as f64;
    let std_err = (var / REPS as f64).sqrt();
    let bias = (mean - truth).abs();
    assert!(
        bias <= 4.0 * std_err.max(1e-9 * truth.abs()),
        "{}: mean estimate {mean:.1} vs truth {truth:.1} (|bias| {bias:.1} > 4·SE {:.1})",
        sampler.name(),
        std_err
    );
}

fn samplers() -> Vec<Box<dyn Sampler>> {
    let size = SampleSize::Rate(0.05);
    vec![
        Box::new(UniformSampler::new(size)),
        Box::new(GswSampler::optimal(0, size)),
        Box::new(GswSampler::arithmetic_compressed(vec![0, 1], size)),
        Box::new(GswSampler::geometric_compressed(vec![0, 1], size)),
        Box::new(PrioritySampler::new(0, size)),
        Box::new(ThresholdSampler::new(0, size)),
    ]
}

#[test]
fn sum_is_unbiased_without_constraint() {
    let (schema, partition) = heavy_tail_partition();
    let truth = exact_sum(&partition, 0, |_| true);
    let all = compile(&schema, Predicate::True);
    for sampler in samplers() {
        assert_unbiased(sampler.as_ref(), 0, &all, truth);
    }
}

#[test]
fn sum_is_unbiased_under_selective_constraint() {
    let (schema, partition) = heavy_tail_partition();
    let truth = exact_sum(&partition, 0, |s| s < 30);
    let pred = compile(&schema, Predicate::cmp("seg", CmpOp::Lt, 30i64));
    for sampler in samplers() {
        assert_unbiased(sampler.as_ref(), 0, &pred, truth);
    }
}

#[test]
fn compressed_gsw_is_unbiased_for_out_of_scope_measure() {
    // A sample weighted by m1 must still estimate m2 without bias — the
    // π's are valid inclusion probabilities regardless of scope (§4.2).
    let (schema, partition) = heavy_tail_partition();
    let truth = exact_sum(&partition, 1, |s| s < 50);
    let pred = compile(&schema, Predicate::cmp("seg", CmpOp::Lt, 50i64));
    let sampler = GswSampler::optimal(0, SampleSize::Rate(0.05));
    assert_unbiased(&sampler, 1, &pred, truth);
}

#[test]
fn count_is_unbiased_and_avg_is_consistent() {
    let (schema, partition) = heavy_tail_partition();
    let pred = compile(&schema, Predicate::cmp("seg", CmpOp::Lt, 30i64));
    let truth_count = seg_column(&partition).iter().filter(|s| **s < 30).count() as f64;
    let truth_sum = exact_sum(&partition, 0, |s| s < 30);
    let truth_avg = truth_sum / truth_count;

    let sampler = GswSampler::optimal(0, SampleSize::Rate(0.05));
    let mut rng = StdRng::seed_from_u64(99);
    let (mut count_acc, mut avg_acc) = (0.0, 0.0);
    for _ in 0..REPS {
        let sample = sampler.sample(&schema, &partition, &mut rng).unwrap();
        let c = estimate_agg(&sample, 0, &pred, AggFunc::Count).unwrap();
        let a = estimate_agg(&sample, 0, &pred, AggFunc::Avg).unwrap();
        assert!(a.variance.is_none(), "AVG has no unbiased plug-in variance");
        count_acc += c.value;
        avg_acc += a.value;
    }
    let mean_count = count_acc / REPS as f64;
    let mean_avg = avg_acc / REPS as f64;
    assert!(
        (mean_count - truth_count).abs() / truth_count < 0.05,
        "COUNT biased: {mean_count:.1} vs {truth_count:.1}"
    );
    // The ratio estimator is only approximately unbiased; allow 5%.
    assert!(
        (mean_avg - truth_avg).abs() / truth_avg < 0.05,
        "AVG off: {mean_avg:.3} vs {truth_avg:.3}"
    );
}

#[test]
fn ht_variance_tracks_empirical_variance() {
    // E[V̂] should match the estimator's true variance (Eq. 12); with 300
    // reps the two agree within a factor comfortably below 2.
    let (schema, partition) = heavy_tail_partition();
    let pred = compile(&schema, Predicate::True);
    let sampler = GswSampler::optimal(0, SampleSize::Rate(0.05));
    let mut rng = StdRng::seed_from_u64(1234);
    let mut estimates = Vec::with_capacity(REPS);
    let mut var_acc = 0.0;
    for _ in 0..REPS {
        let sample = sampler.sample(&schema, &partition, &mut rng).unwrap();
        let est = estimate_agg(&sample, 0, &pred, AggFunc::Sum).unwrap();
        estimates.push(est.value);
        var_acc += est.variance.unwrap();
    }
    let mean = estimates.iter().sum::<f64>() / REPS as f64;
    let empirical =
        estimates.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / (REPS - 1) as f64;
    let predicted = var_acc / REPS as f64;
    let ratio = predicted / empirical;
    assert!(
        (0.5..2.0).contains(&ratio),
        "HT variance {predicted:.1} vs empirical {empirical:.1} (ratio {ratio:.2})"
    );
}

#[test]
fn optimal_gsw_beats_uniform_on_heavy_tail() {
    // Not just unbiased — the optimal sampler should have visibly lower
    // spread than uniform at equal expected size (Corollary 4).
    let (schema, partition) = heavy_tail_partition();
    let pred = compile(&schema, Predicate::True);
    let truth = exact_sum(&partition, 0, |_| true);
    let spread = |sampler: &dyn Sampler, seed: u64| -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sq = 0.0;
        for _ in 0..REPS {
            let sample = sampler.sample(&schema, &partition, &mut rng).unwrap();
            let est = estimate_agg(&sample, 0, &pred, AggFunc::Sum).unwrap();
            sq += (est.value - truth) * (est.value - truth);
        }
        (sq / REPS as f64).sqrt()
    };
    let gsw = spread(&GswSampler::optimal(0, SampleSize::Rate(0.05)), 5);
    let uni = spread(&UniformSampler::new(SampleSize::Rate(0.05)), 5);
    assert!(gsw < 0.5 * uni, "optimal GSW RMSE {gsw:.1} not clearly below uniform RMSE {uni:.1}");
}
