//! Estimating aggregation queries from samples — the online half of §4.
//!
//! Given a sample and a compiled constraint `C`, the subset-sum estimator
//! is `M̂ = Σ_{i∈S∩C} m̂_i` with `m̂_i = m_i/π_i`; its variance is
//! estimated by the Horvitz–Thompson formula
//! `V̂ = Σ_{i∈S∩C} m_i² (1−π_i)/π_i²`, which for GSW has expectation
//! exactly `Σ_{i∈C} Δ m_i²/w_i` — Eq. (12) of the paper restricted to the
//! constraint's rows. The variance feeds §3's noise analysis (σ_ε²).

use crate::error::SamplingError;
use crate::sample::Sample;
use flashp_storage::{AggFunc, CompiledPredicate, KernelSet, MaskScratch};

/// An estimate of one aggregation query from one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimated aggregate `M̂_t`.
    pub value: f64,
    /// HT variance estimate of the SUM/COUNT estimator (`None` for AVG,
    /// whose ratio form has no unbiased plug-in variance).
    pub variance: Option<f64>,
    /// Number of sampled rows that matched the constraint.
    pub matched_rows: usize,
}

impl Estimate {
    /// Standard deviation of the estimator, if the variance is known.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance.map(f64::sqrt)
    }
}

/// Estimate `agg(measure)` under `pred` from `sample`.
///
/// Estimates are unbiased for any measure (π's are valid inclusion
/// probabilities regardless of scope) but only in-scope measures carry the
/// error bounds of Theorem 3 / Corollaries 4–6; callers can check
/// [`Sample::scope`].
pub fn estimate_agg(
    sample: &Sample,
    measure_idx: usize,
    pred: &CompiledPredicate,
    agg: AggFunc,
) -> Result<Estimate, SamplingError> {
    estimate_agg_with(sample, measure_idx, pred, agg, &mut MaskScratch::new())
}

/// The raw Horvitz–Thompson accumulators of one estimation pass — every
/// aggregate finalizes from these, so a caller that needs several (e.g. a
/// range AVG built from total SUM and COUNT) pays for one scan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EstimateComponents {
    /// `Σ m_i/π_i` over matched sampled rows.
    pub sum_hat: f64,
    /// HT variance estimate of `sum_hat`.
    pub sum_var: f64,
    /// `Σ 1/π_i` over matched sampled rows.
    pub count_hat: f64,
    /// HT variance estimate of `count_hat`.
    pub count_var: f64,
    /// Number of sampled rows that matched the constraint.
    pub matched_rows: usize,
}

impl EstimateComponents {
    /// Merge accumulators from an independent sample (per-partition
    /// samples are drawn independently, so variances add).
    pub fn merge(&mut self, other: &EstimateComponents) {
        self.sum_hat += other.sum_hat;
        self.sum_var += other.sum_var;
        self.count_hat += other.count_hat;
        self.count_var += other.count_var;
        self.matched_rows += other.matched_rows;
    }

    /// Finalize into the requested aggregate.
    pub fn finalize(&self, agg: AggFunc) -> Estimate {
        match agg {
            AggFunc::Sum => Estimate {
                value: self.sum_hat,
                variance: Some(self.sum_var),
                matched_rows: self.matched_rows,
            },
            AggFunc::Count => Estimate {
                value: self.count_hat,
                variance: Some(self.count_var),
                matched_rows: self.matched_rows,
            },
            AggFunc::Avg => {
                let value =
                    if self.count_hat > 0.0 { self.sum_hat / self.count_hat } else { f64::NAN };
                // Ratio estimator: approximately unbiased; no plug-in
                // variance.
                Estimate { value, variance: None, matched_rows: self.matched_rows }
            }
        }
    }
}

/// One estimation pass producing the raw HT accumulators.
///
/// Constraint evaluation over the sampled rows runs on the
/// process-wide dispatched kernel tier ([`flashp_storage::simd::active`]);
/// the matched-row loop is word-at-a-time over the selection mask and uses
/// the sample's build-time precomputed `w = 1/π_i` (the HT variance weight
/// `(1−π)/π²` falls out as `w² − w`) — no division per matched row.
pub fn estimate_components_with(
    sample: &Sample,
    measure_idx: usize,
    pred: &CompiledPredicate,
    scratch: &mut MaskScratch,
) -> Result<EstimateComponents, SamplingError> {
    estimate_components_with_kernels(
        sample,
        measure_idx,
        pred,
        scratch,
        flashp_storage::simd::active(),
    )
}

/// [`estimate_components_with`] on an explicit kernel tier — the hook the
/// bench harness uses to pit the SIMD and word-at-a-time tiers against
/// each other on the estimation path.
pub fn estimate_components_with_kernels(
    sample: &Sample,
    measure_idx: usize,
    pred: &CompiledPredicate,
    scratch: &mut MaskScratch,
    kernels: &KernelSet,
) -> Result<EstimateComponents, SamplingError> {
    let num_measures = sample.rows().measures().len();
    if measure_idx >= num_measures {
        return Err(SamplingError::BadMeasure { index: measure_idx, num_measures });
    }
    let mask = pred.evaluate_into_with(sample.rows(), scratch, kernels);
    let values = sample.rows().measure(measure_idx);
    let inv_pi = sample.inverse_inclusion_probabilities();

    let mut c = EstimateComponents::default();
    mask.for_each_one(|i| {
        let w = inv_pi[i];
        let m = values[i];
        c.sum_hat += m * w;
        c.count_hat += w;
        let q = w * w - w; // (1−π)/π² expressed in the precomputed 1/π
        c.sum_var += m * m * q;
        c.count_var += q;
        c.matched_rows += 1;
    });
    scratch.release(mask);
    Ok(c)
}

/// [`estimate_agg`] drawing mask buffers from `scratch`, so a caller
/// estimating many timestamps (the Eq. 4 query batch) reuses one set of
/// buffers across all of them.
pub fn estimate_agg_with(
    sample: &Sample,
    measure_idx: usize,
    pred: &CompiledPredicate,
    agg: AggFunc,
    scratch: &mut MaskScratch,
) -> Result<Estimate, SamplingError> {
    Ok(estimate_components_with(sample, measure_idx, pred, scratch)?.finalize(agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsw::GswSampler;
    use crate::sampler::{SampleSize, Sampler};
    use crate::uniform::UniformSampler;
    use crate::weights::WeightStrategy;
    use flashp_storage::{DataType, DimensionColumn, Partition, Predicate, Schema, SchemaRef};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (SchemaRef, Partition, CompiledPredicate, CompiledPredicate) {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let p = Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![(0..n).map(|i| 1.0 + (i % 97) as f64).collect()],
        )
        .unwrap();
        let half = Predicate::cmp("k", flashp_storage::CmpOp::Lt, (n / 2) as i64)
            .compile(&schema, &[None])
            .unwrap();
        let all = Predicate::True.compile(&schema, &[None]).unwrap();
        (schema, p, half, all)
    }

    #[test]
    fn full_sample_estimates_exactly() {
        let (schema, p, half, all) = setup(1000);
        let mut rng = StdRng::seed_from_u64(0);
        let s = UniformSampler::with_rate(1.0).sample(&schema, &p, &mut rng).unwrap();
        let truth_all: f64 = p.measure(0).iter().sum();
        let truth_half: f64 = p.measure(0)[..500].iter().sum();
        let e = estimate_agg(&s, 0, &all, AggFunc::Sum).unwrap();
        assert!((e.value - truth_all).abs() < 1e-9);
        assert_eq!(e.variance, Some(0.0)); // π = 1 ⇒ zero variance
        let e = estimate_agg(&s, 0, &half, AggFunc::Sum).unwrap();
        assert!((e.value - truth_half).abs() < 1e-9);
        let c = estimate_agg(&s, 0, &half, AggFunc::Count).unwrap();
        assert_eq!(c.value, 500.0);
        let a = estimate_agg(&s, 0, &half, AggFunc::Avg).unwrap();
        assert!((a.value - truth_half / 500.0).abs() < 1e-9);
        assert!(a.variance.is_none());
    }

    #[test]
    fn variance_estimate_matches_empirical_variance() {
        // Empirical Var(M̂) over many replications ≈ mean of HT variance
        // estimates.
        let (schema, p, half, _) = setup(4000);
        let sampler =
            GswSampler::with_size(WeightStrategy::SingleMeasure(0), SampleSize::Rate(0.05));
        let mut estimates = Vec::new();
        let mut var_estimates = Vec::new();
        for seed in 0..400 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            let e = estimate_agg(&s, 0, &half, AggFunc::Sum).unwrap();
            estimates.push(e.value);
            var_estimates.push(e.variance.unwrap());
        }
        let mean: f64 = estimates.iter().sum::<f64>() / estimates.len() as f64;
        let emp_var: f64 = estimates.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (estimates.len() - 1) as f64;
        let mean_ht: f64 = var_estimates.iter().sum::<f64>() / var_estimates.len() as f64;
        let ratio = mean_ht / emp_var;
        assert!(
            (0.7..1.4).contains(&ratio),
            "HT variance {mean_ht} vs empirical {emp_var} (ratio {ratio})"
        );
    }

    #[test]
    fn empty_match_gives_zero_sum_nan_avg() {
        let (schema, p, _, _) = setup(100);
        let never = Predicate::cmp("k", flashp_storage::CmpOp::Gt, 10_000)
            .compile(&schema, &[None])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = UniformSampler::with_rate(0.5).sample(&schema, &p, &mut rng).unwrap();
        let e = estimate_agg(&s, 0, &never, AggFunc::Sum).unwrap();
        assert_eq!(e.value, 0.0);
        assert_eq!(e.matched_rows, 0);
        let a = estimate_agg(&s, 0, &never, AggFunc::Avg).unwrap();
        assert!(a.value.is_nan());
    }

    #[test]
    fn bad_measure_rejected() {
        let (schema, p, _, all) = setup(10);
        let mut rng = StdRng::seed_from_u64(2);
        let s = UniformSampler::with_rate(1.0).sample(&schema, &p, &mut rng).unwrap();
        assert!(estimate_agg(&s, 4, &all, AggFunc::Sum).is_err());
    }
}
