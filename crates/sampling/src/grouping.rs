//! Grouping measures for compressed samples (§4.2 "How to group
//! measures?").
//!
//! When a relation has many measures, one compressed sample for all of
//! them has uninformative error bounds (ρ and δ blow up). The paper
//! partitions measures into small groups by solving KCENTER on the
//! *normalized L1 distance* between measure vectors (justified by
//! Proposition 7), using the classic greedy 2-approximation, then draws
//! one compressed GSW sample per group. Distances are estimated on a
//! subsample of rows.

use crate::consistency::normalized_l1;
use crate::error::SamplingError;
use flashp_storage::Partition;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Result of grouping measures.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureGroups {
    /// Measure indices per group.
    pub groups: Vec<Vec<usize>>,
    /// The chosen center measure of each group.
    pub centers: Vec<usize>,
    /// Max distance from any measure to its group center (the KCENTER
    /// objective value).
    pub max_radius: f64,
}

/// Pairwise normalized-L1 distances between the given measures, estimated
/// on at most `max_rows` uniformly sampled rows of `partition`.
pub fn measure_distances(
    partition: &Partition,
    measure_indices: &[usize],
    max_rows: usize,
    rng: &mut StdRng,
) -> Result<Vec<Vec<f64>>, SamplingError> {
    let num_measures = partition.measures().len();
    for &j in measure_indices {
        if j >= num_measures {
            return Err(SamplingError::BadMeasure { index: j, num_measures });
        }
    }
    let n = partition.num_rows();
    if n == 0 {
        return Err(SamplingError::InvalidParam("empty partition".to_string()));
    }
    let mut rows: Vec<usize> = (0..n).collect();
    if n > max_rows && max_rows > 0 {
        rows.shuffle(rng);
        rows.truncate(max_rows);
    }
    let vectors: Vec<Vec<f64>> = measure_indices
        .iter()
        .map(|&j| {
            let col = partition.measure(j);
            rows.iter().map(|&r| col[r]).collect()
        })
        .collect();
    let k = vectors.len();
    let mut dist = vec![vec![0.0; k]; k];
    for a in 0..k {
        for b in (a + 1)..k {
            let d = normalized_l1(&vectors[a], &vectors[b]);
            dist[a][b] = d;
            dist[b][a] = d;
        }
    }
    Ok(dist)
}

/// Greedy KCENTER 2-approximation on a distance matrix: the first center
/// is the point with the largest total distance (a deterministic,
/// reasonable seed); each further center is the point farthest from its
/// nearest existing center; finally every point joins its nearest center.
pub fn kcenter_groups(
    dist: &[Vec<f64>],
    num_groups: usize,
) -> Result<MeasureGroups, SamplingError> {
    let k = dist.len();
    if k == 0 {
        return Err(SamplingError::InvalidParam("no measures to group".to_string()));
    }
    if num_groups == 0 {
        return Err(SamplingError::InvalidParam("need at least one group".to_string()));
    }
    let g = num_groups.min(k);
    // First center: maximal row sum (an arbitrary-but-deterministic pick;
    // the 2-approximation holds for any first center).
    let first = (0..k)
        .max_by(|&a, &b| {
            let sa: f64 = dist[a].iter().sum();
            let sb: f64 = dist[b].iter().sum();
            sa.total_cmp(&sb)
        })
        .expect("k > 0");
    let mut centers = vec![first];
    let mut nearest: Vec<f64> = (0..k).map(|i| dist[first][i]).collect();
    while centers.len() < g {
        let far = (0..k).max_by(|&a, &b| nearest[a].total_cmp(&nearest[b])).expect("k > 0");
        if nearest[far] == 0.0 {
            break; // all points coincide with existing centers
        }
        centers.push(far);
        for i in 0..k {
            nearest[i] = nearest[i].min(dist[far][i]);
        }
    }
    // Assign each measure to its nearest center.
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); centers.len()];
    let mut max_radius = 0.0f64;
    for i in 0..k {
        let (c, d) = centers
            .iter()
            .enumerate()
            .map(|(ci, &cm)| (ci, dist[cm][i]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one center");
        groups[c].push(i);
        max_radius = max_radius.max(d);
    }
    Ok(MeasureGroups { groups, centers, max_radius })
}

/// Convenience: compute distances on `partition` and group `measures`
/// into `num_groups` clusters. Group contents are *indices into
/// `measures`* mapped back to measure ids.
pub fn group_measures(
    partition: &Partition,
    measures: &[usize],
    num_groups: usize,
    max_rows: usize,
    rng: &mut StdRng,
) -> Result<MeasureGroups, SamplingError> {
    let dist = measure_distances(partition, measures, max_rows, rng)?;
    let mut result = kcenter_groups(&dist, num_groups)?;
    for group in result.groups.iter_mut() {
        for slot in group.iter_mut() {
            *slot = measures[*slot];
        }
    }
    for c in result.centers.iter_mut() {
        *c = measures[*c];
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::DimensionColumn;
    use rand::SeedableRng;

    /// Partition with four measures: m0 ∝ m1 (same shape), m2 ∝ m3, and
    /// the two shapes very different.
    fn partition() -> Partition {
        let n = 200;
        let shape_a: Vec<f64> = (0..n).map(|i| 1.0 + (i % 10) as f64).collect();
        let shape_b: Vec<f64> = (0..n).map(|i| if i % 50 == 0 { 500.0 } else { 1.0 }).collect();
        Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![
                shape_a.clone(),
                shape_a.iter().map(|v| v * 7.0).collect(), // m1 = 7·m0
                shape_b.clone(),
                shape_b.iter().map(|v| v * 0.5).collect(), // m3 = m2/2
            ],
        )
        .unwrap()
    }

    #[test]
    fn proportional_measures_have_zero_distance() {
        let p = partition();
        let mut rng = StdRng::seed_from_u64(0);
        let d = measure_distances(&p, &[0, 1, 2, 3], usize::MAX, &mut rng).unwrap();
        assert!(d[0][1] < 1e-12, "m0 vs m1 distance {}", d[0][1]);
        assert!(d[2][3] < 1e-12);
        assert!(d[0][2] > 0.5, "cross-shape distance {}", d[0][2]);
        // Symmetry and zero diagonal.
        assert_eq!(d[1][3], d[3][1]);
        assert_eq!(d[0][0], 0.0);
    }

    #[test]
    fn kcenter_recovers_natural_groups() {
        let p = partition();
        let mut rng = StdRng::seed_from_u64(1);
        let groups = group_measures(&p, &[0, 1, 2, 3], 2, usize::MAX, &mut rng).unwrap();
        assert_eq!(groups.groups.len(), 2);
        let mut sorted: Vec<Vec<usize>> = groups
            .groups
            .iter()
            .map(|g| {
                let mut g = g.clone();
                g.sort_unstable();
                g
            })
            .collect();
        sorted.sort();
        assert_eq!(sorted, vec![vec![0, 1], vec![2, 3]]);
        assert!(groups.max_radius < 1e-9, "radius {}", groups.max_radius);
    }

    #[test]
    fn more_groups_than_measures_collapses() {
        let p = partition();
        let mut rng = StdRng::seed_from_u64(2);
        let groups = group_measures(&p, &[0, 2], 5, usize::MAX, &mut rng).unwrap();
        assert!(groups.groups.len() <= 2);
        let total: usize = groups.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn single_group_contains_everything() {
        let p = partition();
        let mut rng = StdRng::seed_from_u64(3);
        let groups = group_measures(&p, &[0, 1, 2, 3], 1, usize::MAX, &mut rng).unwrap();
        assert_eq!(groups.groups.len(), 1);
        assert_eq!(groups.groups[0].len(), 4);
        assert!(groups.max_radius > 0.5); // forced to mix shapes
    }

    #[test]
    fn subsampled_distances_still_separate_shapes() {
        let p = partition();
        let mut rng = StdRng::seed_from_u64(4);
        let d = measure_distances(&p, &[0, 2], 50, &mut rng).unwrap();
        assert!(d[0][1] > 0.3, "subsampled distance {}", d[0][1]);
    }

    #[test]
    fn errors() {
        let p = partition();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(measure_distances(&p, &[9], 10, &mut rng).is_err());
        assert!(kcenter_groups(&[], 2).is_err());
        assert!(kcenter_groups(&[vec![0.0]], 0).is_err());
    }

    #[test]
    fn two_approximation_property() {
        // Greedy radius ≤ 2 × optimal radius. For our 2-group example the
        // optimal radius is 0, so greedy must also achieve 0; use a fuzzier
        // configuration to exercise the bound.
        let d = vec![
            vec![0.0, 0.1, 1.0, 1.1],
            vec![0.1, 0.0, 0.9, 1.0],
            vec![1.0, 0.9, 0.0, 0.2],
            vec![1.1, 1.0, 0.2, 0.0],
        ];
        let g = kcenter_groups(&d, 2).unwrap();
        // Optimal 2-center radius here is 0.2 (pairs {0,1}, {2,3} with any
        // center); greedy must be ≤ 0.4.
        assert!(g.max_radius <= 0.4, "radius {}", g.max_radius);
    }
}
