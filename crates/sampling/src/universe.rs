//! Universe (hashed) sampling — the other §7 extension sampler: a row is
//! kept iff the hash of its key dimension falls under the rate. All rows
//! sharing a key value are kept or dropped *together*, which preserves
//! join/group-by semantics across tables sampled with the same seed. The
//! per-row HT factor is still `1/rate`, so subset sums remain unbiased
//! (over the hash draw), though inclusion is correlated within keys and
//! the Poisson variance estimator no longer applies exactly.

use crate::error::SamplingError;
use crate::gsw::gather_rows;
use crate::sample::{MeasureScope, Sample};
use crate::sampler::{SampleSize, Sampler};
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;

/// Universe sampler keyed on one dimension.
#[derive(Debug, Clone, Copy)]
pub struct UniverseSampler {
    key_dimension: usize,
    size: SampleSize,
    seed: u64,
}

impl UniverseSampler {
    /// Sample rows whose key hashes below `size`'s rate. The same
    /// `(key_dimension, seed)` yields coordinated samples across
    /// partitions and tables.
    pub fn new(key_dimension: usize, size: SampleSize, seed: u64) -> Self {
        UniverseSampler { key_dimension, size, seed }
    }
}

/// SplitMix64 — small, fast, well-distributed hash for coordinating
/// inclusion decisions on key values.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Sampler for UniverseSampler {
    fn name(&self) -> String {
        format!("universe[d{}]", self.key_dimension)
    }

    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        _rng: &mut StdRng,
    ) -> Result<Sample, SamplingError> {
        let n = partition.num_rows();
        if self.key_dimension >= partition.dims().len() {
            return Err(SamplingError::InvalidParam(format!(
                "universe key dimension {} out of range",
                self.key_dimension
            )));
        }
        let target = self.size.resolve(n)?;
        let rate = (target / n.max(1) as f64).min(1.0);
        let cutoff = (rate * u64::MAX as f64) as u64;
        let col = partition.dim(self.key_dimension);
        let mut indices = Vec::new();
        for i in 0..n {
            let h = splitmix64(col.get_i64(i) as u64 ^ self.seed);
            if rate >= 1.0 || h <= cutoff {
                indices.push(i);
            }
        }
        let pi = vec![rate.min(1.0); indices.len()];
        let rows = gather_rows(partition, &indices);
        Sample::new(schema.clone(), rows, pi, n, self.name(), MeasureScope::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, DimensionColumn, Schema};
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn setup(keys: Vec<i64>) -> (SchemaRef, Partition) {
        let schema =
            Schema::from_names(&[("user", DataType::Int64)], &["m"]).unwrap().into_shared();
        let n = keys.len();
        let p = Partition::from_columns(vec![DimensionColumn::Int64(keys)], vec![vec![1.0; n]])
            .unwrap();
        (schema, p)
    }

    #[test]
    fn same_key_rows_move_together() {
        // 100 distinct keys, each appearing 5 times.
        let keys: Vec<i64> = (0..500).map(|i| i % 100).collect();
        let (schema, p) = setup(keys);
        let sampler = UniverseSampler::new(0, SampleSize::Rate(0.3), 42);
        let mut rng = StdRng::seed_from_u64(0);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        let kept: HashSet<i64> = (0..s.num_rows()).map(|r| s.rows().dim(0).get_i64(r)).collect();
        // Every kept key must appear exactly 5 times.
        for key in kept {
            let count = (0..s.num_rows()).filter(|&r| s.rows().dim(0).get_i64(r) == key).count();
            assert_eq!(count, 5, "key {key} fragmented");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let keys: Vec<i64> = (0..1000).collect();
        let (schema, p) = setup(keys);
        let mut rng = StdRng::seed_from_u64(0);
        let a = UniverseSampler::new(0, SampleSize::Rate(0.2), 7)
            .sample(&schema, &p, &mut rng)
            .unwrap();
        let b = UniverseSampler::new(0, SampleSize::Rate(0.2), 7)
            .sample(&schema, &p, &mut rng)
            .unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
        // Different seed → different selection (w.h.p.).
        let c = UniverseSampler::new(0, SampleSize::Rate(0.2), 8)
            .sample(&schema, &p, &mut rng)
            .unwrap();
        let a_keys: Vec<i64> = (0..a.num_rows()).map(|r| a.rows().dim(0).get_i64(r)).collect();
        let c_keys: Vec<i64> = (0..c.num_rows()).map(|r| c.rows().dim(0).get_i64(r)).collect();
        assert_ne!(a_keys, c_keys);
    }

    #[test]
    fn rate_is_approximately_respected() {
        let keys: Vec<i64> = (0..20_000).collect();
        let (schema, p) = setup(keys);
        let mut rng = StdRng::seed_from_u64(0);
        let s = UniverseSampler::new(0, SampleSize::Rate(0.1), 3)
            .sample(&schema, &p, &mut rng)
            .unwrap();
        let rate = s.num_rows() as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.02, "rate = {rate}");
    }
}
