//! GSW (Generalized Smoothed Weighted) sampling — §4.1 of the paper.
//!
//! Parameterized by a positive constant Δ and positive weights `w`, each
//! row enters the sample independently with probability `w_i / (Δ + w_i)`
//! (Eq. 6). Larger Δ → smaller samples. Because inclusion is independent
//! per row, the sampler distributes/parallelizes trivially and supports
//! incremental maintenance (see [`crate::incremental`]).

use crate::error::SamplingError;
use crate::sample::{MeasureScope, Sample};
use crate::sampler::{SampleSize, Sampler};
use crate::weights::WeightStrategy;
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;

/// Solve for the Δ that makes the expected sample size
/// `E|S_Δ| = Σ_i w_i/(Δ + w_i)` equal `target` (binary search; the map is
/// strictly decreasing in Δ). Returns 0 when `target ≥ n` (keep
/// everything).
pub fn delta_for_expected_size(weights: &[f64], target: f64) -> Result<f64, SamplingError> {
    let n = weights.len() as f64;
    if target <= 0.0 {
        return Err(SamplingError::InvalidParam(format!(
            "target expected size must be positive, got {target}"
        )));
    }
    if target >= n {
        return Ok(0.0);
    }
    let expected = |delta: f64| -> f64 { weights.iter().map(|w| w / (delta + w)).sum() };
    // Bracket: E(0) = n > target; grow hi until E(hi) < target.
    let mut lo = 0.0f64;
    let mut hi = weights.iter().copied().fold(1.0, f64::max);
    while expected(hi) > target {
        hi *= 2.0;
        if !hi.is_finite() {
            return Err(SamplingError::InvalidParam(
                "could not bracket delta (weights degenerate)".to_string(),
            ));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The GSW sampler: weight strategy + target size (resolved into Δ per
/// partition) or an explicit Δ.
#[derive(Debug, Clone)]
pub struct GswSampler {
    strategy: WeightStrategy,
    sizing: Sizing,
}

#[derive(Debug, Clone)]
enum Sizing {
    /// Calibrate Δ per partition to hit this expected size.
    Auto(SampleSize),
    /// Use this Δ everywhere.
    FixedDelta(f64),
}

impl GswSampler {
    /// GSW with Δ calibrated per partition so that the expected sample
    /// size matches `size`.
    pub fn with_size(strategy: WeightStrategy, size: SampleSize) -> Self {
        GswSampler { strategy, sizing: Sizing::Auto(size) }
    }

    /// GSW with an explicit Δ (the paper's native parameterization).
    pub fn with_delta(strategy: WeightStrategy, delta: f64) -> Self {
        GswSampler { strategy, sizing: Sizing::FixedDelta(delta) }
    }

    /// The optimal GSW sampler for `measure` (w = m, Corollary 4).
    pub fn optimal(measure: usize, size: SampleSize) -> Self {
        GswSampler::with_size(WeightStrategy::SingleMeasure(measure), size)
    }

    /// Arithmetic compressed GSW over a measure group (Eq. 9).
    pub fn arithmetic_compressed(measures: Vec<usize>, size: SampleSize) -> Self {
        GswSampler::with_size(WeightStrategy::ArithmeticMean(measures), size)
    }

    /// Geometric compressed GSW over a measure group (Eq. 7).
    pub fn geometric_compressed(measures: Vec<usize>, size: SampleSize) -> Self {
        GswSampler::with_size(WeightStrategy::GeometricMean(measures), size)
    }

    /// The weight strategy in use.
    pub fn strategy(&self) -> &WeightStrategy {
        &self.strategy
    }

    fn scope(&self) -> MeasureScope {
        match &self.strategy {
            WeightStrategy::SingleMeasure(j) => MeasureScope::Single(*j),
            WeightStrategy::ArithmeticMean(g) | WeightStrategy::GeometricMean(g) => {
                MeasureScope::Group(g.clone())
            }
            WeightStrategy::Constant => MeasureScope::All,
        }
    }
}

impl Sampler for GswSampler {
    fn name(&self) -> String {
        match &self.sizing {
            Sizing::Auto(SampleSize::Rate(r)) => format!("gsw[{}]@{r}", self.strategy.label()),
            Sizing::Auto(SampleSize::Expected(k)) => {
                format!("gsw[{}]#{k}", self.strategy.label())
            }
            Sizing::FixedDelta(d) => format!("gsw[{}]d{d}", self.strategy.label()),
        }
    }

    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<Sample, SamplingError> {
        let n = partition.num_rows();
        let weights = self.strategy.compute(partition)?;
        let delta = match &self.sizing {
            Sizing::Auto(size) => {
                let target = size.resolve(n)?;
                delta_for_expected_size(&weights, target)?
            }
            Sizing::FixedDelta(d) => {
                if *d < 0.0 || !d.is_finite() {
                    return Err(SamplingError::InvalidParam(format!("invalid delta {d}")));
                }
                *d
            }
        };

        let mut indices = Vec::new();
        let mut pi = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            let p = w / (delta + w); // delta = 0 → p = 1: keep everything
            if delta == 0.0 || rng.gen::<f64>() < p {
                indices.push(i);
                pi.push(if delta == 0.0 { 1.0 } else { p });
            }
        }
        let rows = gather_rows(partition, &indices);
        Sample::new(schema.clone(), rows, pi, n, self.name(), self.scope())
    }
}

/// Materialize the rows at `indices` into a new partition.
pub(crate) fn gather_rows(partition: &Partition, indices: &[usize]) -> Partition {
    let dims = partition.dims().iter().map(|c| c.gather(indices)).collect();
    let measures =
        partition.measures().iter().map(|m| indices.iter().map(|&i| m[i]).collect()).collect();
    Partition::from_columns(dims, measures).expect("gathered columns have equal length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::DimensionColumn;
    use rand::SeedableRng;

    fn schema() -> SchemaRef {
        flashp_storage::Schema::from_names(&[("k", flashp_storage::DataType::Int64)], &["m1", "m2"])
            .unwrap()
            .into_shared()
    }

    fn partition(n: usize, value: impl Fn(usize) -> f64) -> Partition {
        Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![(0..n).map(&value).collect(), (0..n).map(|i| (i % 5 + 1) as f64).collect()],
        )
        .unwrap()
    }

    #[test]
    fn delta_calibration_hits_target() {
        let weights: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let delta = delta_for_expected_size(&weights, 100.0).unwrap();
        let expected: f64 = weights.iter().map(|w| w / (delta + w)).sum();
        assert!((expected - 100.0).abs() < 0.01, "E|S| = {expected}");
    }

    #[test]
    fn delta_zero_when_target_exceeds_population() {
        let weights = vec![1.0; 10];
        assert_eq!(delta_for_expected_size(&weights, 10.0).unwrap(), 0.0);
        assert_eq!(delta_for_expected_size(&weights, 50.0).unwrap(), 0.0);
        assert!(delta_for_expected_size(&weights, 0.0).is_err());
    }

    #[test]
    fn full_rate_keeps_every_row() {
        let schema = schema();
        let p = partition(50, |i| (i + 1) as f64);
        let sampler = GswSampler::optimal(0, SampleSize::Rate(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        assert_eq!(s.num_rows(), 50);
        assert!(s.inclusion_probabilities().iter().all(|&p| p == 1.0));
    }

    #[test]
    fn expected_size_is_respected() {
        let schema = schema();
        let p = partition(20_000, |i| 1.0 + (i % 100) as f64);
        let sampler = GswSampler::optimal(0, SampleSize::Expected(500));
        let mut rng = StdRng::seed_from_u64(2);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        // |S| is a sum of independent Bernoullis with E = 500; 5σ ≈ 110.
        assert!((s.num_rows() as f64 - 500.0).abs() < 120.0, "sample size = {}", s.num_rows());
    }

    #[test]
    fn estimates_are_unbiased_over_replications() {
        let schema = schema();
        let p = partition(2000, |i| if i % 100 == 0 { 500.0 } else { 1.0 });
        let truth: f64 = p.measure(0).iter().sum();
        let sampler = GswSampler::optimal(0, SampleSize::Rate(0.05));
        let mut sum = 0.0;
        let reps = 400;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            let est: f64 = (0..s.num_rows()).map(|r| s.calibrated(0, r)).sum();
            sum += est;
        }
        let mean_est = sum / reps as f64;
        assert!(
            (mean_est - truth).abs() / truth < 0.02,
            "mean estimate {mean_est} vs truth {truth}"
        );
    }

    #[test]
    fn optimal_weights_capture_heavy_rows() {
        // With w = m, heavy rows are (almost) always present.
        let schema = schema();
        let p = partition(1000, |i| if i == 7 { 1e6 } else { 1.0 });
        let sampler = GswSampler::optimal(0, SampleSize::Expected(50));
        let mut rng = StdRng::seed_from_u64(3);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        let has_heavy = (0..s.num_rows()).any(|r| s.rows().measure(0)[r] == 1e6);
        assert!(has_heavy, "heavy hitter missing from optimal GSW sample");
    }

    #[test]
    fn fixed_delta_matches_formula() {
        let schema = schema();
        let p = partition(5000, |_| 10.0);
        let sampler = GswSampler::with_delta(WeightStrategy::SingleMeasure(0), 90.0);
        let mut rng = StdRng::seed_from_u64(4);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        // p = 10/(90+10) = 0.1 → E|S| = 500.
        assert!((s.num_rows() as f64 - 500.0).abs() < 100.0);
        assert!(s.inclusion_probabilities().iter().all(|&p| (p - 0.1).abs() < 1e-12));
        assert!(GswSampler::with_delta(WeightStrategy::Constant, -1.0)
            .sample(&schema, &p, &mut rng)
            .is_err());
    }

    #[test]
    fn compressed_scope_reflects_group() {
        let schema = schema();
        let p = partition(100, |i| (i + 1) as f64);
        let sampler = GswSampler::arithmetic_compressed(vec![0, 1], SampleSize::Rate(0.5));
        let mut rng = StdRng::seed_from_u64(5);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        assert!(s.scope().covers(0) && s.scope().covers(1));
    }
}
