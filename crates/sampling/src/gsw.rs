//! GSW (Generalized Smoothed Weighted) sampling — §4.1 of the paper.
//!
//! Parameterized by a positive constant Δ and positive weights `w`, each
//! row enters the sample independently with probability `w_i / (Δ + w_i)`
//! (Eq. 6). Larger Δ → smaller samples. Because inclusion is independent
//! per row, the sampler distributes/parallelizes trivially and supports
//! incremental maintenance (see [`crate::incremental`]).

use crate::error::SamplingError;
use crate::incremental::GswCellState;
use crate::sample::{MeasureScope, Sample};
use crate::sampler::{SampleSize, Sampler};
use crate::weights::WeightStrategy;
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;

/// Solve for the Δ that makes the expected sample size
/// `E|S_Δ| = Σ_i w_i/(Δ + w_i)` equal `target` (binary search; the map is
/// strictly decreasing in Δ). Returns 0 when `target ≥ n` (keep
/// everything).
pub fn delta_for_expected_size(weights: &[f64], target: f64) -> Result<f64, SamplingError> {
    let n = weights.len() as f64;
    if target <= 0.0 {
        return Err(SamplingError::InvalidParam(format!(
            "target expected size must be positive, got {target}"
        )));
    }
    if target >= n {
        return Ok(0.0);
    }
    let expected = |delta: f64| -> f64 { weights.iter().map(|w| w / (delta + w)).sum() };
    // Bracket: E(0) = n > target; grow hi until E(hi) < target.
    let mut lo = 0.0f64;
    let mut hi = weights.iter().copied().fold(1.0, f64::max);
    while expected(hi) > target {
        hi *= 2.0;
        if !hi.is_finite() {
            return Err(SamplingError::InvalidParam(
                "could not bracket delta (weights degenerate)".to_string(),
            ));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-12 * hi.max(1.0) {
            break;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// The GSW sampler: weight strategy + target size (resolved into Δ per
/// partition) or an explicit Δ.
#[derive(Debug, Clone)]
pub struct GswSampler {
    strategy: WeightStrategy,
    sizing: Sizing,
}

#[derive(Debug, Clone)]
enum Sizing {
    /// Calibrate Δ per partition to hit this expected size.
    Auto(SampleSize),
    /// Use this Δ everywhere.
    FixedDelta(f64),
}

impl GswSampler {
    /// GSW with Δ calibrated per partition so that the expected sample
    /// size matches `size`.
    pub fn with_size(strategy: WeightStrategy, size: SampleSize) -> Self {
        GswSampler { strategy, sizing: Sizing::Auto(size) }
    }

    /// GSW with an explicit Δ (the paper's native parameterization).
    pub fn with_delta(strategy: WeightStrategy, delta: f64) -> Self {
        GswSampler { strategy, sizing: Sizing::FixedDelta(delta) }
    }

    /// The optimal GSW sampler for `measure` (w = m, Corollary 4).
    pub fn optimal(measure: usize, size: SampleSize) -> Self {
        GswSampler::with_size(WeightStrategy::SingleMeasure(measure), size)
    }

    /// Arithmetic compressed GSW over a measure group (Eq. 9).
    pub fn arithmetic_compressed(measures: Vec<usize>, size: SampleSize) -> Self {
        GswSampler::with_size(WeightStrategy::ArithmeticMean(measures), size)
    }

    /// Geometric compressed GSW over a measure group (Eq. 7).
    pub fn geometric_compressed(measures: Vec<usize>, size: SampleSize) -> Self {
        GswSampler::with_size(WeightStrategy::GeometricMean(measures), size)
    }

    /// The weight strategy in use.
    pub fn strategy(&self) -> &WeightStrategy {
        &self.strategy
    }

    fn scope(&self) -> MeasureScope {
        match &self.strategy {
            WeightStrategy::SingleMeasure(j) => MeasureScope::Single(*j),
            WeightStrategy::ArithmeticMean(g) | WeightStrategy::GeometricMean(g) => {
                MeasureScope::Group(g.clone())
            }
            WeightStrategy::Constant => MeasureScope::All,
        }
    }

    /// Resolve the Δ this sampler uses for a partition with the given
    /// per-row weights.
    fn resolve_delta(&self, n: usize, weights: &[f64]) -> Result<f64, SamplingError> {
        match &self.sizing {
            Sizing::Auto(size) => {
                let target = size.resolve(n)?;
                delta_for_expected_size(weights, target)
            }
            Sizing::FixedDelta(d) => {
                if *d < 0.0 || !d.is_finite() {
                    return Err(SamplingError::InvalidParam(format!("invalid delta {d}")));
                }
                Ok(*d)
            }
        }
    }

    /// Like [`GswSampler::sample`] (bit-for-bit the same draw for the same
    /// RNG state), additionally recording the per-cell
    /// [`GswCellState`] that lets a later, grown version of the partition
    /// be absorbed incrementally via [`GswSampler::absorb`] (§4.1).
    pub fn sample_recording(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<(Sample, GswCellState), SamplingError> {
        let n = partition.num_rows();
        let weights = self.strategy.compute(partition)?;
        let delta = self.resolve_delta(n, &weights)?;
        let mut indices = Vec::new();
        let mut pi = Vec::new();
        let mut draws = Vec::new();
        if delta == 0.0 {
            // Keep everything; `sample` consumes no draws in this case.
            indices.extend(0..n);
            pi.resize(n, 1.0);
        } else {
            for (i, &w) in weights.iter().enumerate() {
                let p = w / (delta + w);
                let u = rng.gen::<f64>();
                if u < p {
                    indices.push(i);
                    pi.push(p);
                    draws.push(u);
                }
            }
        }
        let rows = gather_rows(partition, &indices);
        let sample = Sample::new(schema.clone(), rows, pi, n, self.name(), self.scope())?;
        let state = GswCellState { delta, draws, indices, rng: rng.clone(), population: n };
        Ok((sample, state))
    }

    /// Absorb a *grown* partition into a previously recorded cell — the
    /// incremental maintenance procedure of §4.1, "without touching any
    /// row in `[n] − S_Δ`":
    ///
    /// * retained rows are re-checked against the new Δ′ through their
    ///   stored keys (evicting those with `κ < Δ′`);
    /// * rejected rows are provably still rejected (Δ′ ≥ Δ) and are never
    ///   revisited;
    /// * only the `n′ − n` appended rows draw fresh inclusion decisions,
    ///   continuing the cell's deterministic RNG stream.
    ///
    /// The result is bit-for-bit what [`GswSampler::sample`] would draw
    /// over the grown partition from the cell's original seed. Returns
    /// `Ok(None)` when the preconditions fail — the partition shrank, Δ
    /// was 0 (everything retained, no draws recorded), or the recalibrated
    /// Δ′ is below Δ (previously rejected rows could re-qualify) — in
    /// which case the caller should fall back to a fresh
    /// [`GswSampler::sample_recording`].
    pub fn absorb(
        &self,
        state: &GswCellState,
        schema: &SchemaRef,
        partition: &Partition,
    ) -> Result<Option<(Sample, GswCellState)>, SamplingError> {
        let n_new = partition.num_rows();
        if state.delta == 0.0 || n_new < state.population {
            return Ok(None);
        }
        let weights = self.strategy.compute(partition)?;
        let new_delta = self.resolve_delta(n_new, &weights)?;
        if new_delta < state.delta || new_delta == 0.0 {
            return Ok(None);
        }
        let mut indices = Vec::with_capacity(state.indices.len());
        let mut draws = Vec::with_capacity(state.draws.len());
        let mut pi = Vec::with_capacity(state.indices.len());
        // Evict: retained rows whose key fell below Δ′. Old rows keep
        // their original weights (appends never rewrite existing rows).
        for (&i, &u) in state.indices.iter().zip(&state.draws) {
            let w = weights[i];
            let p = w / (new_delta + w);
            if u < p {
                indices.push(i);
                draws.push(u);
                pi.push(p);
            }
        }
        // Offer: only the appended rows, continuing the draw stream.
        let mut rng = state.rng.clone();
        for (i, &w) in weights.iter().enumerate().skip(state.population) {
            let p = w / (new_delta + w);
            let u = rng.gen::<f64>();
            if u < p {
                indices.push(i);
                draws.push(u);
                pi.push(p);
            }
        }
        let rows = gather_rows(partition, &indices);
        let sample = Sample::new(schema.clone(), rows, pi, n_new, self.name(), self.scope())?;
        let next = GswCellState { delta: new_delta, draws, indices, rng, population: n_new };
        Ok(Some((sample, next)))
    }
}

impl Sampler for GswSampler {
    fn name(&self) -> String {
        match &self.sizing {
            Sizing::Auto(SampleSize::Rate(r)) => format!("gsw[{}]@{r}", self.strategy.label()),
            Sizing::Auto(SampleSize::Expected(k)) => {
                format!("gsw[{}]#{k}", self.strategy.label())
            }
            Sizing::FixedDelta(d) => format!("gsw[{}]d{d}", self.strategy.label()),
        }
    }

    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<Sample, SamplingError> {
        let n = partition.num_rows();
        let weights = self.strategy.compute(partition)?;
        let delta = self.resolve_delta(n, &weights)?;

        let mut indices = Vec::new();
        let mut pi = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            let p = w / (delta + w); // delta = 0 → p = 1: keep everything
            if delta == 0.0 || rng.gen::<f64>() < p {
                indices.push(i);
                pi.push(if delta == 0.0 { 1.0 } else { p });
            }
        }
        let rows = gather_rows(partition, &indices);
        Sample::new(schema.clone(), rows, pi, n, self.name(), self.scope())
    }
}

/// Materialize the rows at `indices` into a new partition.
pub(crate) fn gather_rows(partition: &Partition, indices: &[usize]) -> Partition {
    let dims = partition.dims().iter().map(|c| c.gather(indices)).collect();
    let measures =
        partition.measures().iter().map(|m| indices.iter().map(|&i| m[i]).collect()).collect();
    Partition::from_columns(dims, measures).expect("gathered columns have equal length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::DimensionColumn;
    use rand::SeedableRng;

    fn schema() -> SchemaRef {
        flashp_storage::Schema::from_names(&[("k", flashp_storage::DataType::Int64)], &["m1", "m2"])
            .unwrap()
            .into_shared()
    }

    fn partition(n: usize, value: impl Fn(usize) -> f64) -> Partition {
        Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![(0..n).map(&value).collect(), (0..n).map(|i| (i % 5 + 1) as f64).collect()],
        )
        .unwrap()
    }

    #[test]
    fn delta_calibration_hits_target() {
        let weights: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let delta = delta_for_expected_size(&weights, 100.0).unwrap();
        let expected: f64 = weights.iter().map(|w| w / (delta + w)).sum();
        assert!((expected - 100.0).abs() < 0.01, "E|S| = {expected}");
    }

    #[test]
    fn delta_zero_when_target_exceeds_population() {
        let weights = vec![1.0; 10];
        assert_eq!(delta_for_expected_size(&weights, 10.0).unwrap(), 0.0);
        assert_eq!(delta_for_expected_size(&weights, 50.0).unwrap(), 0.0);
        assert!(delta_for_expected_size(&weights, 0.0).is_err());
    }

    #[test]
    fn full_rate_keeps_every_row() {
        let schema = schema();
        let p = partition(50, |i| (i + 1) as f64);
        let sampler = GswSampler::optimal(0, SampleSize::Rate(1.0));
        let mut rng = StdRng::seed_from_u64(1);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        assert_eq!(s.num_rows(), 50);
        assert!(s.inclusion_probabilities().iter().all(|&p| p == 1.0));
    }

    #[test]
    fn expected_size_is_respected() {
        let schema = schema();
        let p = partition(20_000, |i| 1.0 + (i % 100) as f64);
        let sampler = GswSampler::optimal(0, SampleSize::Expected(500));
        let mut rng = StdRng::seed_from_u64(2);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        // |S| is a sum of independent Bernoullis with E = 500; 5σ ≈ 110.
        assert!((s.num_rows() as f64 - 500.0).abs() < 120.0, "sample size = {}", s.num_rows());
    }

    #[test]
    fn estimates_are_unbiased_over_replications() {
        let schema = schema();
        let p = partition(2000, |i| if i % 100 == 0 { 500.0 } else { 1.0 });
        let truth: f64 = p.measure(0).iter().sum();
        let sampler = GswSampler::optimal(0, SampleSize::Rate(0.05));
        let mut sum = 0.0;
        let reps = 400;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            let est: f64 = (0..s.num_rows()).map(|r| s.calibrated(0, r)).sum();
            sum += est;
        }
        let mean_est = sum / reps as f64;
        assert!(
            (mean_est - truth).abs() / truth < 0.02,
            "mean estimate {mean_est} vs truth {truth}"
        );
    }

    #[test]
    fn optimal_weights_capture_heavy_rows() {
        // With w = m, heavy rows are (almost) always present.
        let schema = schema();
        let p = partition(1000, |i| if i == 7 { 1e6 } else { 1.0 });
        let sampler = GswSampler::optimal(0, SampleSize::Expected(50));
        let mut rng = StdRng::seed_from_u64(3);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        let has_heavy = (0..s.num_rows()).any(|r| s.rows().measure(0)[r] == 1e6);
        assert!(has_heavy, "heavy hitter missing from optimal GSW sample");
    }

    #[test]
    fn fixed_delta_matches_formula() {
        let schema = schema();
        let p = partition(5000, |_| 10.0);
        let sampler = GswSampler::with_delta(WeightStrategy::SingleMeasure(0), 90.0);
        let mut rng = StdRng::seed_from_u64(4);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        // p = 10/(90+10) = 0.1 → E|S| = 500.
        assert!((s.num_rows() as f64 - 500.0).abs() < 100.0);
        assert!(s.inclusion_probabilities().iter().all(|&p| (p - 0.1).abs() < 1e-12));
        assert!(GswSampler::with_delta(WeightStrategy::Constant, -1.0)
            .sample(&schema, &p, &mut rng)
            .is_err());
    }

    /// Concatenate two partitions (rows of `b` after rows of `a`).
    fn grown(a: &Partition, b: &Partition) -> Partition {
        let mut p = a.clone();
        p.extend(b).unwrap();
        p
    }

    fn assert_samples_identical(a: &Sample, b: &Sample) {
        assert_eq!(a.num_rows(), b.num_rows(), "sample sizes differ");
        assert_eq!(a.population_rows(), b.population_rows());
        assert_eq!(a.method(), b.method());
        assert_eq!(a.inclusion_probabilities(), b.inclusion_probabilities());
        for d in 0..a.rows().dims().len() {
            for r in 0..a.num_rows() {
                assert_eq!(a.rows().dim(d).get_i64(r), b.rows().dim(d).get_i64(r));
            }
        }
        for m in 0..a.rows().measures().len() {
            assert_eq!(a.rows().measure(m), b.rows().measure(m));
        }
    }

    #[test]
    fn sample_recording_matches_plain_sample() {
        let schema = schema();
        let p = partition(5000, |i| 1.0 + (i % 37) as f64);
        for sampler in [
            GswSampler::optimal(0, SampleSize::Rate(0.05)),
            GswSampler::arithmetic_compressed(vec![0, 1], SampleSize::Rate(0.1)),
            GswSampler::with_delta(WeightStrategy::SingleMeasure(0), 500.0),
            GswSampler::optimal(0, SampleSize::Rate(1.0)), // Δ = 0 path
        ] {
            let plain = sampler.sample(&schema, &p, &mut StdRng::seed_from_u64(11)).unwrap();
            let (recorded, state) =
                sampler.sample_recording(&schema, &p, &mut StdRng::seed_from_u64(11)).unwrap();
            assert_samples_identical(&plain, &recorded);
            assert_eq!(state.len(), plain.num_rows());
            assert_eq!(state.population_rows(), 5000);
        }
    }

    #[test]
    fn absorb_is_bit_for_bit_a_fresh_draw() {
        // Draw a cell over n rows, grow the partition, absorb — the result
        // must equal a fresh same-seed draw over the grown partition, and
        // the absorb must only have drawn for the appended rows.
        let schema = schema();
        let base = partition(4000, |i| 1.0 + (i % 23) as f64);
        // Heavier appended rows: E|S| at the old Δ grows faster than the
        // rate target, so the recalibrated Δ′ ≥ Δ and absorb applies.
        let extra = partition(1000, |i| 20.0 + (i % 17) as f64);
        let big = grown(&base, &extra);
        for sampler in [
            GswSampler::optimal(0, SampleSize::Rate(0.05)),
            GswSampler::arithmetic_compressed(vec![0, 1], SampleSize::Rate(0.02)),
            GswSampler::geometric_compressed(vec![0, 1], SampleSize::Rate(0.02)),
            GswSampler::with_delta(WeightStrategy::SingleMeasure(0), 300.0),
        ] {
            let (_, state) =
                sampler.sample_recording(&schema, &base, &mut StdRng::seed_from_u64(7)).unwrap();
            let (absorbed, next) = sampler
                .absorb(&state, &schema, &big)
                .unwrap()
                .expect("preconditions hold: Δ grows with the partition");
            let fresh = sampler.sample(&schema, &big, &mut StdRng::seed_from_u64(7)).unwrap();
            assert_samples_identical(&absorbed, &fresh);
            assert!(next.delta() >= state.delta());
            assert_eq!(next.population_rows(), 5000);
        }
    }

    #[test]
    fn chained_absorbs_stay_identical() {
        let schema = schema();
        let mut acc = partition(3000, |i| 1.0 + (i % 11) as f64);
        let sampler = GswSampler::optimal(0, SampleSize::Rate(0.04));
        let (_, mut state) =
            sampler.sample_recording(&schema, &acc, &mut StdRng::seed_from_u64(42)).unwrap();
        for round in 0..3 {
            let extra = partition(700 + round * 100, |i| 15.0 + ((i + round) % 13) as f64);
            acc = grown(&acc, &extra);
            let (absorbed, next) =
                sampler.absorb(&state, &schema, &acc).unwrap().expect("absorbable");
            let fresh = sampler.sample(&schema, &acc, &mut StdRng::seed_from_u64(42)).unwrap();
            assert_samples_identical(&absorbed, &fresh);
            state = next;
        }
    }

    #[test]
    fn absorb_refuses_when_preconditions_fail() {
        let schema = schema();
        let base = partition(2000, |i| 1.0 + (i % 9) as f64);
        // Rate 1 → Δ = 0: no draws recorded, nothing to absorb onto.
        let full = GswSampler::optimal(0, SampleSize::Rate(1.0));
        let (_, state) =
            full.sample_recording(&schema, &base, &mut StdRng::seed_from_u64(1)).unwrap();
        assert!(full.absorb(&state, &schema, &grown(&base, &base)).unwrap().is_none());

        // Appending many near-zero-weight rows leaves E|S| almost flat
        // while the target grows with n → Δ′ < Δ → refused (previously
        // rejected rows could re-qualify).
        let sampler = GswSampler::optimal(0, SampleSize::Rate(0.05));
        let (_, state) =
            sampler.sample_recording(&schema, &base, &mut StdRng::seed_from_u64(2)).unwrap();
        let tiny = partition(4000, |_| 1e-6);
        assert!(sampler.absorb(&state, &schema, &grown(&base, &tiny)).unwrap().is_none());

        // A shrunken partition can never be absorbed.
        let small = partition(100, |i| 1.0 + i as f64);
        assert!(sampler.absorb(&state, &schema, &small).unwrap().is_none());
    }

    #[test]
    fn compressed_scope_reflects_group() {
        let schema = schema();
        let p = partition(100, |i| (i + 1) as f64);
        let sampler = GswSampler::arithmetic_compressed(vec![0, 1], SampleSize::Rate(0.5));
        let mut rng = StdRng::seed_from_u64(5);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        assert!(s.scope().covers(0) && s.scope().covers(1));
    }
}
