//! Stratified sampling — one of the §7 extension samplers ("they can also
//! be used in our system"). Rows are stratified by the value of one
//! dimension; each stratum gets a Bernoulli rate that guarantees small
//! strata are not starved (protecting rare groups, the classic
//! congressional-sample motivation \[5\]).

use crate::error::SamplingError;
use crate::gsw::gather_rows;
use crate::sample::{MeasureScope, Sample};
use crate::sampler::{SampleSize, Sampler};
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Stratified Bernoulli sampler over a single dimension.
#[derive(Debug, Clone)]
pub struct StratifiedSampler {
    dimension: usize,
    size: SampleSize,
    /// Minimum expected rows kept per stratum (before capping at the
    /// stratum's population).
    min_per_stratum: usize,
}

impl StratifiedSampler {
    /// Stratify on `dimension` with a global expected `size`; every
    /// stratum keeps at least `min_per_stratum` expected rows.
    pub fn new(dimension: usize, size: SampleSize, min_per_stratum: usize) -> Self {
        StratifiedSampler { dimension, size, min_per_stratum }
    }
}

impl Sampler for StratifiedSampler {
    fn name(&self) -> String {
        format!("stratified[d{}]", self.dimension)
    }

    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<Sample, SamplingError> {
        let n = partition.num_rows();
        if self.dimension >= partition.dims().len() {
            return Err(SamplingError::InvalidParam(format!(
                "stratification dimension {} out of range",
                self.dimension
            )));
        }
        let target = self.size.resolve(n)?;
        let col = partition.dim(self.dimension);
        // Stratum sizes.
        let mut strata: HashMap<i64, usize> = HashMap::new();
        for i in 0..n {
            *strata.entry(col.get_i64(i)).or_insert(0) += 1;
        }
        // Proportional allocation with a per-stratum floor.
        let global_rate = (target / n.max(1) as f64).min(1.0);
        let mut rates: HashMap<i64, f64> = HashMap::with_capacity(strata.len());
        for (&key, &size) in &strata {
            let proportional = global_rate * size as f64;
            let budget = proportional.max(self.min_per_stratum as f64).min(size as f64);
            rates.insert(key, (budget / size as f64).min(1.0));
        }
        let mut indices = Vec::new();
        let mut pi = Vec::new();
        for i in 0..n {
            let rate = rates[&col.get_i64(i)];
            if rate >= 1.0 || rng.gen::<f64>() < rate {
                indices.push(i);
                pi.push(rate.min(1.0));
            }
        }
        let rows = gather_rows(partition, &indices);
        Sample::new(schema.clone(), rows, pi, n, self.name(), MeasureScope::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate_agg;
    use flashp_storage::{AggFunc, DataType, DimensionColumn, Predicate, Schema};
    use rand::SeedableRng;

    /// 1000 rows in a big stratum (g=0), 10 rows in a tiny one (g=1).
    fn setup() -> (SchemaRef, Partition) {
        let schema = Schema::from_names(&[("g", DataType::Int64)], &["m"]).unwrap().into_shared();
        let n = 1010;
        let p = Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).map(|i| i64::from(i >= 1000)).collect())],
            vec![(0..n).map(|i| if i >= 1000 { 100.0 } else { 1.0 }).collect()],
        )
        .unwrap();
        (schema, p)
    }

    #[test]
    fn small_strata_are_protected() {
        let (schema, p) = setup();
        let sampler = StratifiedSampler::new(0, SampleSize::Expected(50), 8);
        let mut rng = StdRng::seed_from_u64(0);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        let tiny = (0..s.num_rows()).filter(|&r| s.rows().dim(0).get_i64(r) == 1).count();
        // Expected 8 of 10 tiny-stratum rows; binomial spread is small.
        assert!(tiny >= 4, "tiny stratum only kept {tiny} rows");
    }

    #[test]
    fn unbiased_for_group_restricted_sums() {
        let (schema, p) = setup();
        let pred = Predicate::eq("g", 1).compile(&schema, &[None]).unwrap();
        let sampler = StratifiedSampler::new(0, SampleSize::Expected(100), 5);
        let mut total = 0.0;
        let reps = 300;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            total += estimate_agg(&s, 0, &pred, AggFunc::Sum).unwrap().value;
        }
        let mean = total / reps as f64;
        assert!((mean - 1000.0).abs() / 1000.0 < 0.05, "mean {mean} vs 1000");
    }

    #[test]
    fn bad_dimension_rejected() {
        let (schema, p) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(StratifiedSampler::new(9, SampleSize::Expected(10), 1)
            .sample(&schema, &p, &mut rng)
            .is_err());
    }
}
