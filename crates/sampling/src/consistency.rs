//! The error theory of §4: (θ, θ̄)-consistency (Definition 2), the
//! sampling-efficiency bounds of Theorem 3 and Corollaries 4–6, trend and
//! range deviations (Eqs. 8, 10), and the L1-distance connection of
//! Proposition 7 used for measure grouping.

use crate::error::SamplingError;

/// `(θ, θ̄)`-consistency of weights with a measure (Definition 2):
/// `θ = min_i m_i/w_i`, `θ̄ = max_i m_i/w_i`. Rows where both `m_i` and
/// `w_i` are zero are skipped; a zero weight with non-zero measure is an
/// error (the HT estimator would be biased).
pub fn consistency(weights: &[f64], measures: &[f64]) -> Result<(f64, f64), SamplingError> {
    assert_eq!(weights.len(), measures.len(), "length mismatch");
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for (i, (&w, &m)) in weights.iter().zip(measures).enumerate() {
        if m == 0.0 && w == 0.0 {
            continue;
        }
        if w <= 0.0 {
            return Err(SamplingError::ZeroWeight { row: i });
        }
        let r = m / w;
        lo = lo.min(r);
        hi = hi.max(r);
    }
    if !lo.is_finite() {
        // No informative rows: perfectly consistent by convention.
        return Ok((1.0, 1.0));
    }
    Ok((lo, hi))
}

/// The consistency scale `θ̂ = θ̄/θ ≥ 1` (Definition 2). Returns infinity
/// when some `m_i = 0` while others are positive (θ = 0).
pub fn consistency_scale(weights: &[f64], measures: &[f64]) -> Result<f64, SamplingError> {
    let (lo, hi) = consistency(weights, measures)?;
    if lo <= 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(hi / lo)
}

/// Theorem 3: `RE ≤ RSTD ≤ √(θ̂ / E|S_Δ|)`.
pub fn theorem3_bound(scale: f64, expected_sample_size: f64) -> f64 {
    if expected_sample_size <= 0.0 {
        return f64::INFINITY;
    }
    (scale / expected_sample_size).sqrt()
}

/// Corollary 4 (optimal GSW, w = m): `RSTD ≤ √(1 / E|S_Δ|)`.
pub fn optimal_gsw_bound(expected_sample_size: f64) -> f64 {
    theorem3_bound(1.0, expected_sample_size)
}

/// Trend deviation between two measures (Eq. 8):
/// `ρ̄ = max_i m_i^{(p)}/m_i^{(q)}`, `ρ = min_i …`, returned as
/// `(ρ, ρ̄, ρ̄/ρ)`. Requires strictly positive measures.
pub fn trend_deviation(mp: &[f64], mq: &[f64]) -> Result<(f64, f64, f64), SamplingError> {
    assert_eq!(mp.len(), mq.len(), "length mismatch");
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for (i, (&a, &b)) in mp.iter().zip(mq).enumerate() {
        if b <= 0.0 || a <= 0.0 {
            return Err(SamplingError::InvalidParam(format!(
                "trend deviation needs positive measures (row {i}: {a}, {b})"
            )));
        }
        let r = a / b;
        lo = lo.min(r);
        hi = hi.max(r);
    }
    if !lo.is_finite() {
        return Ok((1.0, 1.0, 1.0));
    }
    Ok((lo, hi, hi / lo))
}

/// Maximum pairwise trend deviation `ρ` over a group of measures.
pub fn max_trend_deviation(measures: &[&[f64]]) -> Result<f64, SamplingError> {
    let mut rho: f64 = 1.0;
    for (a, ma) in measures.iter().enumerate() {
        for mb in measures.iter().skip(a + 1) {
            let (_, _, r) = trend_deviation(ma, mb)?;
            rho = rho.max(r);
        }
    }
    Ok(rho)
}

/// Corollary 5 (geometric compressed GSW over `k` measures):
/// `RSTD ≤ √(ρ^{(k−1)/k} / E|S_Δ|)`.
pub fn geometric_bound(rho: f64, k: usize, expected_sample_size: f64) -> f64 {
    if expected_sample_size <= 0.0 || k == 0 {
        return f64::INFINITY;
    }
    let exponent = (k as f64 - 1.0) / k as f64;
    (rho.powf(exponent) / expected_sample_size).sqrt()
}

/// Range deviation δ over a group of measures (Eq. 10): the max over rows
/// of (max measure / min measure) at that row. Requires positive measures.
pub fn range_deviation(measures: &[&[f64]]) -> Result<f64, SamplingError> {
    if measures.is_empty() {
        return Ok(1.0);
    }
    let n = measures[0].len();
    let mut delta = 1.0f64;
    for i in 0..n {
        let mut mn = f64::INFINITY;
        let mut mx = 0.0f64;
        for m in measures {
            let v = m[i];
            if v <= 0.0 {
                return Err(SamplingError::InvalidParam(format!(
                    "range deviation needs positive measures (row {i}: {v})"
                )));
            }
            mn = mn.min(v);
            mx = mx.max(v);
        }
        delta = delta.max(mx / mn);
    }
    Ok(delta)
}

/// Corollary 6 (arithmetic compressed GSW): `RSTD ≤ √(δ² / E|S_Δ|)`.
pub fn arithmetic_bound(delta: f64, expected_sample_size: f64) -> f64 {
    if expected_sample_size <= 0.0 {
        return f64::INFINITY;
    }
    (delta * delta / expected_sample_size).sqrt()
}

/// Normalized L1 distance `‖m′ − w′‖₁` between two non-negative vectors,
/// each scaled to sum 1 — the grouping metric of Proposition 7.
pub fn normalized_l1(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let sa: f64 = a.iter().sum();
    let sb: f64 = b.iter().sum();
    if sa <= 0.0 || sb <= 0.0 {
        return if sa == sb { 0.0 } else { 2.0 };
    }
    a.iter().zip(b).map(|(x, y)| (x / sa - y / sb).abs()).sum()
}

/// Proposition 7's bound: if w is (θ, θ̄)-consistent with m then
/// `‖m′ − w′‖₁ ≤ θ̂ − 1`.
pub fn prop7_bound(scale: f64) -> f64 {
    (scale - 1.0).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_consistency_example() {
        // §4.1: m = [100,100,200,400], w = [10,10,20,50]
        // → θ = 400/50 = 8, θ̄ = 10, θ̂ = 1.25.
        let m = [100.0, 100.0, 200.0, 400.0];
        let w = [10.0, 10.0, 20.0, 50.0];
        let (lo, hi) = consistency(&w, &m).unwrap();
        assert_eq!(lo, 8.0);
        assert_eq!(hi, 10.0);
        assert!((consistency_scale(&w, &m).unwrap() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn optimal_weights_scale_is_one() {
        let m = [3.0, 7.0, 11.0];
        assert_eq!(consistency_scale(&m, &m).unwrap(), 1.0);
        assert_eq!(theorem3_bound(1.0, 100.0), optimal_gsw_bound(100.0));
        assert!((optimal_gsw_bound(100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_with_positive_measure_rejected() {
        assert!(consistency(&[0.0], &[1.0]).is_err());
        // Both zero: skipped.
        assert_eq!(consistency(&[0.0, 1.0], &[0.0, 2.0]).unwrap(), (2.0, 2.0));
    }

    #[test]
    fn proportional_measures_have_unit_trend_deviation() {
        // m(p) = c · m(q) → ρ = 1 (the paper's remark after Eq. 8).
        let mq = [1.0, 2.0, 3.0];
        let mp = [5.0, 10.0, 15.0];
        let (lo, hi, rho) = trend_deviation(&mp, &mq).unwrap();
        assert_eq!(lo, 5.0);
        assert_eq!(hi, 5.0);
        assert_eq!(rho, 1.0);
    }

    #[test]
    fn range_deviation_example() {
        let m1 = [100.0, 100.0];
        let m2 = [1.0, 50.0];
        // Rows: 100/1 = 100, 100/50 = 2 → δ = 100.
        assert_eq!(range_deviation(&[&m1, &m2]).unwrap(), 100.0);
        assert!(range_deviation(&[&[0.0][..]]).is_err());
    }

    #[test]
    fn bounds_shrink_with_sample_size() {
        assert!(theorem3_bound(2.0, 400.0) < theorem3_bound(2.0, 100.0));
        assert!(geometric_bound(4.0, 2, 100.0) < geometric_bound(4.0, 2, 25.0));
        assert!(arithmetic_bound(3.0, 100.0) < arithmetic_bound(3.0, 10.0));
        assert_eq!(theorem3_bound(2.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn geometric_bound_k1_is_optimal() {
        // A "group" of one measure: exponent 0 → optimal bound.
        assert_eq!(geometric_bound(100.0, 1, 64.0), optimal_gsw_bound(64.0));
    }

    #[test]
    fn normalized_l1_examples() {
        assert_eq!(normalized_l1(&[1.0, 1.0], &[2.0, 2.0]), 0.0); // same shape
        let d = normalized_l1(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 2.0).abs() < 1e-12); // maximal disagreement
    }

    proptest! {
        #[test]
        fn prop7_holds_for_random_vectors(
            m in proptest::collection::vec(0.1f64..100.0, 2..20),
            scale_noise in proptest::collection::vec(0.5f64..2.0, 2..20),
        ) {
            let n = m.len().min(scale_noise.len());
            let m = &m[..n];
            let w: Vec<f64> = m.iter().zip(&scale_noise[..n]).map(|(x, s)| x * s).collect();
            let scale = consistency_scale(&w, m).unwrap();
            let l1 = normalized_l1(m, &w);
            prop_assert!(
                l1 <= prop7_bound(scale) + 1e-9,
                "L1 {l1} exceeds Prop. 7 bound {}", prop7_bound(scale)
            );
        }

        #[test]
        fn consistency_scale_at_least_one(
            pairs in proptest::collection::vec((0.1f64..50.0, 0.1f64..50.0), 1..30)
        ) {
            let (w, m): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
            let s = consistency_scale(&w, &m).unwrap();
            prop_assert!(s >= 1.0 - 1e-12);
        }
    }
}
