//! # flashp-sampling
//!
//! Samplers and estimators for approximate aggregation — the technical
//! core of FlashP (§4 of the paper).
//!
//! The star is **GSW (Generalized Smoothed Weighted) sampling**
//! ([`gsw`]): every row `i` enters the sample independently with
//! probability `w_i / (Δ + w_i)` for arbitrary positive weights `w`; the
//! Horvitz–Thompson-style calibrated measure `m̂_i = m_i (Δ + w_i)/w_i`
//! makes subset-sum estimates unbiased for *any* constraint chosen online.
//! Weight choices ([`weights`]):
//!
//! * `w = m` — the **optimal GSW sampler** (Corollary 4, RSTD ≤ √(1/E|S|));
//! * `w = arithmetic/geometric mean of several measures` — **compressed
//!   GSW** (Corollaries 5–6), one sample serving many measures;
//!
//! with error behaviour governed by the *(θ, θ̄)-consistency* of weights
//! and measures (Theorem 3, [`consistency`]).
//!
//! Baselines for the paper's experiments live alongside: uniform Bernoulli
//! ([`uniform`]), priority \[21\] ([`priority`]), threshold \[20\]
//! ([`threshold`]), plus the §7 extension samplers (stratified, universe).
//! [`incremental`] maintains a GSW sample under row arrivals by raising Δ
//! without touching unsampled rows (§4.1); [`multilayer`] keeps samples of
//! several sizes for the response-time/accuracy tradeoff (§5);
//! [`grouping`] partitions measures into compressed-sample groups via the
//! KCENTER greedy algorithm on normalized L1 distance (§4.2).

#![warn(missing_docs)]

pub mod consistency;
pub mod error;
pub mod estimator;
pub mod grouping;
pub mod gsw;
pub mod incremental;
pub mod multilayer;
pub mod priority;
pub mod sample;
pub mod sampler;
pub mod stratified;
pub mod threshold;
pub mod uniform;
pub mod universe;
pub mod weights;

pub use error::SamplingError;
pub use estimator::{
    estimate_agg, estimate_agg_with, estimate_components_with, estimate_components_with_kernels,
    Estimate, EstimateComponents,
};
pub use grouping::{group_measures, MeasureGroups};
pub use gsw::{delta_for_expected_size, GswSampler};
pub use incremental::{GswCellState, IncrementalGswSample};
pub use multilayer::{LayerSelection, MultiLayerSamples};
pub use priority::PrioritySampler;
pub use sample::Sample;
pub use sampler::{SampleSize, Sampler};
pub use stratified::StratifiedSampler;
pub use threshold::ThresholdSampler;
pub use uniform::UniformSampler;
pub use universe::UniverseSampler;
pub use weights::WeightStrategy;
