//! Priority sampling (Duffield–Lund–Thorup \[21\], shown essentially optimal
//! by Szegedy \[37\]): draw `u_i ~ U(0,1)`, give row `i` priority
//! `q_i = m_i/u_i`, keep the `k` highest-priority rows, and let τ be the
//! (k+1)-st priority. The estimator `m̂_i = max(m_i, τ)` is unbiased with
//! `RSTD ≤ √(1/(k−1))`.
//!
//! Within our unified [`Sample`] representation, `π_i = min(1, m_i/τ)` is
//! the conditional inclusion probability given τ, so `m_i/π_i = max(m_i,τ)`
//! recovers exactly the DLT estimator — and also yields (unbounded-error)
//! estimates for *other* measures, the open question Theorem 3 answers for
//! GSW.
//!
//! Note the sample is drawn *per measure*: with `d_m` measures to serve,
//! `d_m` independent priority samples are required (the space-cost problem
//! compressed GSW solves).

use crate::error::SamplingError;
use crate::gsw::gather_rows;
use crate::sample::{MeasureScope, Sample};
use crate::sampler::{SampleSize, Sampler};
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;

/// Priority sampler for one measure, keeping a fixed number of rows.
#[derive(Debug, Clone, Copy)]
pub struct PrioritySampler {
    measure: usize,
    size: SampleSize,
}

impl PrioritySampler {
    /// Priority sampler on `measure` with the given size (resolved per
    /// partition; `Rate(r)` keeps `⌈r·n⌉` rows).
    pub fn new(measure: usize, size: SampleSize) -> Self {
        PrioritySampler { measure, size }
    }

    /// The measure this sample is drawn for.
    pub fn measure(&self) -> usize {
        self.measure
    }
}

impl Sampler for PrioritySampler {
    fn name(&self) -> String {
        match self.size {
            SampleSize::Rate(r) => format!("priority[m{}]@{r}", self.measure),
            SampleSize::Expected(k) => format!("priority[m{}]#{k}", self.measure),
        }
    }

    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<Sample, SamplingError> {
        let n = partition.num_rows();
        if self.measure >= partition.measures().len() {
            return Err(SamplingError::BadMeasure {
                index: self.measure,
                num_measures: partition.measures().len(),
            });
        }
        let k = self.size.resolve(n)?.round().max(1.0) as usize;
        let m = partition.measure(self.measure);
        if k >= n {
            // Keep everything exactly.
            let indices: Vec<usize> = (0..n).collect();
            let rows = gather_rows(partition, &indices);
            return Sample::new(
                schema.clone(),
                rows,
                vec![1.0; n],
                n,
                self.name(),
                MeasureScope::Single(self.measure),
            );
        }
        // Priorities q_i = m_i / u_i; rows with m_i = 0 never qualify
        // (they contribute nothing to the sum anyway).
        let mut priorities: Vec<(f64, usize)> = m
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                (if v > 0.0 { v / u } else { 0.0 }, i)
            })
            .collect();
        // Partial sort: highest k+1 priorities first.
        priorities.select_nth_unstable_by(k, |a, b| b.0.total_cmp(&a.0));
        let tau = priorities[k].0; // (k+1)-st largest priority
        let mut kept: Vec<usize> =
            priorities[..k].iter().filter(|(q, _)| *q > 0.0).map(|(_, i)| *i).collect();
        kept.sort_unstable();
        let pi: Vec<f64> =
            kept.iter().map(|&i| if tau > 0.0 { (m[i] / tau).min(1.0) } else { 1.0 }).collect();
        let rows = gather_rows(partition, &kept);
        Sample::new(schema.clone(), rows, pi, n, self.name(), MeasureScope::Single(self.measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, DimensionColumn, Schema};
    use rand::SeedableRng;

    fn setup(values: Vec<f64>) -> (SchemaRef, Partition) {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let n = values.len();
        let p = Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![values],
        )
        .unwrap();
        (schema, p)
    }

    #[test]
    fn keeps_exactly_k_rows() {
        let (schema, p) = setup((1..=1000).map(|i| i as f64).collect());
        let sampler = PrioritySampler::new(0, SampleSize::Expected(50));
        let mut rng = StdRng::seed_from_u64(0);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        assert_eq!(s.num_rows(), 50);
    }

    #[test]
    fn small_population_kept_exactly() {
        let (schema, p) = setup(vec![1.0, 2.0, 3.0]);
        let sampler = PrioritySampler::new(0, SampleSize::Expected(10));
        let mut rng = StdRng::seed_from_u64(1);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        assert_eq!(s.num_rows(), 3);
        let est: f64 = (0..3).map(|r| s.calibrated(0, r)).sum();
        assert_eq!(est, 6.0);
    }

    #[test]
    fn unbiased_over_replications() {
        // Heavy-tailed data: a few large values among many small.
        let values: Vec<f64> = (0..2000).map(|i| if i % 200 == 0 { 1000.0 } else { 1.0 }).collect();
        let truth: f64 = values.iter().sum();
        let (schema, p) = setup(values);
        let sampler = PrioritySampler::new(0, SampleSize::Expected(100));
        let mut total = 0.0;
        let reps = 400;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            total += (0..s.num_rows()).map(|r| s.calibrated(0, r)).sum::<f64>();
        }
        let mean = total / reps as f64;
        assert!((mean - truth).abs() / truth < 0.03, "mean {mean} vs {truth}");
    }

    #[test]
    fn rstd_is_near_theoretical_optimum() {
        // RSTD ≤ sqrt(1/(k−1)) per Szegedy's theorem.
        let values: Vec<f64> =
            (0..3000).map(|i| if i % 100 == 0 { 300.0 } else { 1.0 + (i % 7) as f64 }).collect();
        let truth: f64 = values.iter().sum();
        let (schema, p) = setup(values);
        let k = 101;
        let sampler = PrioritySampler::new(0, SampleSize::Expected(k));
        let reps = 300;
        let mut sq = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            let est: f64 = (0..s.num_rows()).map(|r| s.calibrated(0, r)).sum();
            sq += ((est - truth) / truth).powi(2);
        }
        let rstd = (sq / reps as f64).sqrt();
        let bound = (1.0 / (k as f64 - 1.0)).sqrt();
        assert!(rstd <= bound * 1.2, "rstd {rstd} vs bound {bound}");
    }

    #[test]
    fn heavy_hitters_enter_deterministically() {
        // A row with m ≥ τ is kept with π = 1 — the long-tail behaviour the
        // paper notes can hurt when the tail misses the constraint.
        let values: Vec<f64> = (0..500).map(|i| if i == 5 { 1e9 } else { 1.0 }).collect();
        let (schema, p) = setup(values);
        let sampler = PrioritySampler::new(0, SampleSize::Expected(20));
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            let found = (0..s.num_rows()).any(|r| s.rows().measure(0)[r] == 1e9);
            assert!(found, "seed {seed}: heavy hitter missing");
        }
    }

    #[test]
    fn zero_rows_never_sampled() {
        let values: Vec<f64> = (0..100).map(|i| if i < 50 { 0.0 } else { 1.0 }).collect();
        let (schema, p) = setup(values);
        let sampler = PrioritySampler::new(0, SampleSize::Expected(30));
        let mut rng = StdRng::seed_from_u64(7);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        assert!((0..s.num_rows()).all(|r| s.rows().measure(0)[r] > 0.0));
    }

    #[test]
    fn bad_measure_rejected() {
        let (schema, p) = setup(vec![1.0; 10]);
        let mut rng = StdRng::seed_from_u64(8);
        assert!(PrioritySampler::new(3, SampleSize::Expected(5))
            .sample(&schema, &p, &mut rng)
            .is_err());
    }
}
