//! Materialized samples: a mini-partition of sampled rows plus per-row
//! inclusion probabilities.
//!
//! Every sampler in this crate reduces to the same estimation interface:
//! row `i` was included with (possibly conditional) probability `π_i`, so
//! the calibrated measure is `m̂_i = m_i / π_i` and
//! `Σ_{i∈S∩C} m̂_i` unbiasedly estimates the subset sum over any
//! constraint `C`. For GSW, `π_i = w_i/(Δ+w_i)` recovers exactly Eq. (6)'s
//! `m̂_i = m_i (Δ+w_i)/w_i`; for priority/threshold sampling `π_i =
//! min(1, m_i/τ)` recovers `m̂_i = max(m_i, τ)`.

use flashp_storage::{CompiledPredicate, Partition, SchemaRef};

use crate::error::SamplingError;

/// Which measures a sample is *designed* for. Estimates for out-of-scope
/// measures are still unbiased (the π's are valid inclusion
/// probabilities) but carry no useful error bound — this is exactly the
/// open question of Alon et al. that Theorem 3 answers for GSW.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasureScope {
    /// Weights independent of any measure (uniform, stratified, universe).
    All,
    /// Drawn for one specific measure (optimal GSW, priority, threshold).
    Single(usize),
    /// Drawn for a group of measures (compressed GSW).
    Group(Vec<usize>),
}

impl MeasureScope {
    /// Whether estimating `measure` is within this sample's design scope.
    pub fn covers(&self, measure: usize) -> bool {
        match self {
            MeasureScope::All => true,
            MeasureScope::Single(j) => *j == measure,
            MeasureScope::Group(g) => g.contains(&measure),
        }
    }
}

/// A materialized sample of one partition.
#[derive(Debug, Clone)]
pub struct Sample {
    schema: SchemaRef,
    rows: Partition,
    /// Per-sampled-row inclusion probability π ∈ (0, 1].
    pi: Vec<f64>,
    /// Precomputed `1/π_i`, so estimation multiplies instead of dividing
    /// per matched row per query. The HT variance weight `(1−π)/π²` is
    /// derived from this as `w² − w` at estimation time — one mul+sub,
    /// not worth a third per-row array.
    inv_pi: Vec<f64>,
    /// Number of rows in the population partition this was drawn from.
    population_rows: usize,
    /// Sampler that produced this sample (diagnostics).
    method: String,
    scope: MeasureScope,
}

impl Sample {
    /// Assemble a sample. `rows` holds the sampled rows; `pi[i]` is row
    /// `i`'s inclusion probability.
    pub fn new(
        schema: SchemaRef,
        rows: Partition,
        pi: Vec<f64>,
        population_rows: usize,
        method: impl Into<String>,
        scope: MeasureScope,
    ) -> Result<Self, SamplingError> {
        if pi.len() != rows.num_rows() {
            return Err(SamplingError::InvalidParam(format!(
                "pi length {} != sampled rows {}",
                pi.len(),
                rows.num_rows()
            )));
        }
        if let Some(i) = pi.iter().position(|p| !(*p > 0.0 && *p <= 1.0)) {
            return Err(SamplingError::InvalidParam(format!(
                "inclusion probability out of (0,1] at sampled row {i}: {}",
                pi[i]
            )));
        }
        // Build-time precomputation: estimation touches every matched row
        // of every query, so the per-row divisions are paid once here.
        let inv_pi: Vec<f64> = pi.iter().map(|&p| 1.0 / p).collect();
        Ok(Sample { schema, rows, pi, inv_pi, population_rows, method: method.into(), scope })
    }

    /// The schema shared with the source table.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// The sampled rows as a partition (raw, uncalibrated measures).
    pub fn rows(&self) -> &Partition {
        &self.rows
    }

    /// Inclusion probabilities, aligned with [`Sample::rows`].
    pub fn inclusion_probabilities(&self) -> &[f64] {
        &self.pi
    }

    /// Precomputed `1/π_i`, aligned with [`Sample::rows`].
    pub fn inverse_inclusion_probabilities(&self) -> &[f64] {
        &self.inv_pi
    }

    /// Number of sampled rows.
    pub fn num_rows(&self) -> usize {
        self.rows.num_rows()
    }

    /// Size of the population partition this sample was drawn from.
    pub fn population_rows(&self) -> usize {
        self.population_rows
    }

    /// Realized sampling rate `|S| / n`.
    pub fn rate(&self) -> f64 {
        if self.population_rows == 0 {
            return 0.0;
        }
        self.num_rows() as f64 / self.population_rows as f64
    }

    /// Name of the producing sampler.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Designed measure scope.
    pub fn scope(&self) -> &MeasureScope {
        &self.scope
    }

    /// Calibrated measure value `m̂_i = m_i / π_i` of sampled row `i`.
    #[inline]
    pub fn calibrated(&self, measure_idx: usize, row: usize) -> f64 {
        self.rows.measure(measure_idx)[row] * self.inv_pi[row]
    }

    /// Evaluate a compiled predicate over the sampled rows (diagnostic
    /// convenience; estimation goes through
    /// [`crate::estimator::estimate_components_with_kernels`], which
    /// evaluates against an explicit kernel tier and reuses mask
    /// buffers).
    pub fn evaluate(&self, pred: &CompiledPredicate) -> flashp_storage::Bitmask {
        pred.evaluate(&self.rows)
    }

    /// Approximate heap footprint in bytes (dimension columns + measures +
    /// probabilities and their precomputed inverses) — the quantity
    /// stacked in Fig. 15(a).
    pub fn byte_size(&self) -> usize {
        self.rows.byte_size() + (self.pi.len() + self.inv_pi.len()) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, DimensionColumn, Schema};

    fn mini_sample(pi: Vec<f64>) -> Result<Sample, SamplingError> {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let n = pi.len();
        let rows = Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![(0..n).map(|i| (i + 1) as f64 * 10.0).collect()],
        )
        .unwrap();
        Sample::new(schema, rows, pi, 100, "test", MeasureScope::All)
    }

    #[test]
    fn calibration_divides_by_pi() {
        let s = mini_sample(vec![0.5, 0.25]).unwrap();
        assert_eq!(s.calibrated(0, 0), 20.0);
        assert_eq!(s.calibrated(0, 1), 80.0);
        assert_eq!(s.rate(), 0.02);
        assert!(s.byte_size() > 0);
    }

    #[test]
    fn rejects_invalid_pi() {
        assert!(mini_sample(vec![0.0]).is_err());
        assert!(mini_sample(vec![1.5]).is_err());
        assert!(mini_sample(vec![f64::NAN]).is_err());
        assert!(mini_sample(vec![1.0]).is_ok());
    }

    #[test]
    fn scope_covering() {
        assert!(MeasureScope::All.covers(3));
        assert!(MeasureScope::Single(2).covers(2));
        assert!(!MeasureScope::Single(2).covers(1));
        assert!(MeasureScope::Group(vec![0, 2]).covers(2));
        assert!(!MeasureScope::Group(vec![0, 2]).covers(1));
    }
}
