//! Error type for sampling and estimation.

use flashp_storage::StorageError;
use std::fmt;

/// Errors raised while drawing samples or estimating from them.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplingError {
    /// Invalid sampler parameter (rate, size, Δ, weights).
    InvalidParam(String),
    /// A weight was zero/negative for a row with a non-zero measure —
    /// Horvitz–Thompson calibration would be biased.
    ZeroWeight {
        /// Row index within the offending partition.
        row: usize,
    },
    /// Measure index outside the schema.
    BadMeasure {
        /// The out-of-range measure index.
        index: usize,
        /// How many measures the schema has.
        num_measures: usize,
    },
    /// Underlying storage error (predicate compile, schema lookup).
    Storage(StorageError),
    /// The requested estimate is not supported by this sample kind
    /// (e.g. COUNT from a sample with no inclusion probabilities).
    Unsupported(String),
}

impl fmt::Display for SamplingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplingError::InvalidParam(msg) => write!(f, "invalid sampler parameter: {msg}"),
            SamplingError::ZeroWeight { row } => {
                write!(f, "row {row} has zero sampling weight but non-zero measure")
            }
            SamplingError::BadMeasure { index, num_measures } => {
                write!(f, "measure index {index} out of range ({num_measures} measures)")
            }
            SamplingError::Storage(e) => write!(f, "storage error: {e}"),
            SamplingError::Unsupported(msg) => write!(f, "unsupported estimate: {msg}"),
        }
    }
}

impl std::error::Error for SamplingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplingError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for SamplingError {
    fn from(e: StorageError) -> Self {
        SamplingError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: SamplingError = StorageError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("storage error"));
        assert!(SamplingError::ZeroWeight { row: 3 }.to_string().contains("3"));
    }
}
