//! Incremental maintenance of a GSW sample (§4.1).
//!
//! Each row draws `p_i ~ U(0,1)` once; it belongs to the sample `S_Δ` iff
//! `p_i ≤ w_i/(Δ+w_i)` ⇔ `(1/p_i − 1)·w_i ≥ Δ`. Storing the *key*
//! `κ_i = (1/p_i − 1) w_i` therefore lets the sample be maintained under
//! both growth of the data (insert new rows, only keeping those with
//! `κ ≥ Δ`) and growth of Δ (evict rows with `κ < Δ′`) — "without touching
//! any row in `[n] − S_Δ`", exactly the procedure described in the paper.
//! A min-heap on κ makes evictions O(log |S|) amortized.

use crate::error::SamplingError;
use crate::sample::{MeasureScope, Sample};
use flashp_storage::{Partition, PartitionBuilder, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry retained by the incremental sampler.
#[derive(Debug, Clone)]
struct Entry {
    key: f64,
    weight: f64,
    dims: Vec<i64>,
    measures: Vec<f64>,
}

/// Ordered wrapper so entries sort by key in the heap.
#[derive(Debug, Clone)]
struct ByKey(Entry);

impl PartialEq for ByKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl Eq for ByKey {}
impl PartialOrd for ByKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ByKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key.total_cmp(&other.0.key)
    }
}

/// A GSW sample maintained incrementally over a stream of rows.
#[derive(Debug)]
pub struct IncrementalGswSample {
    schema: SchemaRef,
    delta: f64,
    /// Min-heap by key: the smallest keys are evicted first as Δ grows.
    heap: BinaryHeap<Reverse<ByKey>>,
    /// Total rows ever offered (the population size n).
    population: usize,
}

impl IncrementalGswSample {
    /// Empty sample at the given Δ ≥ 0.
    pub fn new(schema: SchemaRef, delta: f64) -> Result<Self, SamplingError> {
        if !delta.is_finite() || delta < 0.0 {
            return Err(SamplingError::InvalidParam(format!("invalid delta {delta}")));
        }
        Ok(IncrementalGswSample { schema, delta, heap: BinaryHeap::new(), population: 0 })
    }

    /// Current Δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Rows currently retained.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no rows are retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Rows ever offered.
    pub fn population_rows(&self) -> usize {
        self.population
    }

    /// Offer a row with its sampling weight; draws `p ~ U(0,1)` from `rng`.
    /// Returns true if the row was retained.
    pub fn insert(
        &mut self,
        dims: Vec<i64>,
        measures: Vec<f64>,
        weight: f64,
        rng: &mut StdRng,
    ) -> Result<bool, SamplingError> {
        let p: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        self.insert_with_p(dims, measures, weight, p)
    }

    /// Deterministic variant taking the uniform draw explicitly — used to
    /// prove distributional equivalence with direct GSW sampling.
    pub fn insert_with_p(
        &mut self,
        dims: Vec<i64>,
        measures: Vec<f64>,
        weight: f64,
        p: f64,
    ) -> Result<bool, SamplingError> {
        if !weight.is_finite() || weight <= 0.0 {
            return Err(SamplingError::InvalidParam(format!(
                "weight must be positive, got {weight}"
            )));
        }
        if !(p > 0.0 && p <= 1.0) {
            return Err(SamplingError::InvalidParam(format!("p must be in (0,1], got {p}")));
        }
        self.population += 1;
        let key = (1.0 / p - 1.0) * weight;
        if key >= self.delta {
            self.heap.push(Reverse(ByKey(Entry { key, weight, dims, measures })));
            return Ok(true);
        }
        Ok(false)
    }

    /// Raise Δ to `new_delta`, evicting rows whose key falls below it.
    /// Returns the number of evicted rows. Lowering Δ is impossible
    /// (evicted rows are gone) and is rejected.
    pub fn raise_delta(&mut self, new_delta: f64) -> Result<usize, SamplingError> {
        if new_delta < self.delta {
            return Err(SamplingError::InvalidParam(format!(
                "cannot lower delta from {} to {new_delta}",
                self.delta
            )));
        }
        self.delta = new_delta;
        let mut evicted = 0;
        while let Some(Reverse(ByKey(e))) = self.heap.peek() {
            if e.key >= new_delta {
                break;
            }
            self.heap.pop();
            evicted += 1;
        }
        Ok(evicted)
    }

    /// Shrink until at most `max_rows` are retained, raising Δ as needed.
    /// Returns the new Δ.
    pub fn shrink_to(&mut self, max_rows: usize) -> f64 {
        while self.heap.len() > max_rows {
            if let Some(Reverse(ByKey(e))) = self.heap.pop() {
                // Δ must exceed the evicted key so the invariant
                // "retained ⇔ key ≥ Δ" still holds.
                self.delta = self.delta.max(next_up(e.key));
            }
        }
        self.delta
    }

    /// Materialize into an immutable [`Sample`] with
    /// `π_i = w_i/(Δ+w_i)`.
    pub fn to_sample(&self) -> Result<Sample, SamplingError> {
        let entries: Vec<&Entry> = self.heap.iter().map(|Reverse(ByKey(e))| e).collect();
        let mut builder = PartitionBuilder::with_capacity(&self.schema, entries.len());
        let mut pi = Vec::with_capacity(entries.len());
        for e in &entries {
            builder.push_raw_row(&e.dims, &e.measures)?;
            pi.push(if self.delta == 0.0 { 1.0 } else { e.weight / (self.delta + e.weight) });
        }
        Sample::new(
            self.schema.clone(),
            builder.finish(),
            pi,
            self.population,
            format!("incremental_gsw[d{}]", self.delta),
            MeasureScope::All,
        )
    }
}

/// The draw state of one GSW sample cell, retained so the cell can be
/// maintained *incrementally* when its source partition grows (§4.1).
///
/// Each row's uniform draw `u_i` determines membership through the key
/// `κ_i = (1/u_i − 1)·w_i`: row `i` is retained at threshold Δ iff
/// `κ_i ≥ Δ` ⇔ `u_i < w_i/(Δ+w_i)`. Storing `u_i` for the retained rows
/// (plus the RNG state after one draw per source row) lets a later,
/// larger Δ′ be applied by
///
/// 1. *evicting* retained rows whose key falls below Δ′ — a filter over
///    `|S|` stored draws, never touching the rows outside the sample
///    (rejected rows have `κ < Δ ≤ Δ′` and stay rejected for free); and
/// 2. *offering* only the newly appended rows, continuing the cell's
///    deterministic draw stream where it left off.
///
/// Because the stream position of every row's draw is preserved, the
/// absorbed sample is **bit-for-bit identical** to what a fresh
/// [`crate::Sampler::sample`] of the same [`crate::GswSampler`] over the
/// grown partition (with the same seed) would draw — the invariant the
/// catalog-delta layer's tests pin.
///
/// Produced by [`crate::GswSampler::sample_recording`] and advanced by
/// [`crate::GswSampler::absorb`].
#[derive(Debug, Clone)]
pub struct GswCellState {
    /// Δ the cell was last drawn at.
    pub(crate) delta: f64,
    /// Uniform draws `u_i` of the retained rows, in row order.
    pub(crate) draws: Vec<f64>,
    /// Source-partition row indices of the retained rows, ascending.
    pub(crate) indices: Vec<usize>,
    /// RNG state after consuming one draw per source-partition row.
    pub(crate) rng: StdRng,
    /// Source-partition rows drawn over so far.
    pub(crate) population: usize,
}

impl GswCellState {
    /// Δ the cell was last drawn at.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of retained rows the state tracks.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the cell retains no rows.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Source-partition rows drawn over so far.
    pub fn population_rows(&self) -> usize {
        self.population
    }

    /// Approximate heap footprint in bytes (draws + indices).
    pub fn byte_size(&self) -> usize {
        self.draws.len() * 8 + self.indices.len() * std::mem::size_of::<usize>()
    }
}

/// Smallest f64 strictly greater than `x` (for finite positive `x`).
fn next_up(x: f64) -> f64 {
    if x == 0.0 {
        return f64::MIN_POSITIVE;
    }
    f64::from_bits(x.to_bits() + 1)
}

/// Build a [`Partition`]'s worth of rows into an incremental sample using
/// per-row weights (convenience for tests and the engine's streaming
/// ingestion path).
pub fn offer_partition(
    sample: &mut IncrementalGswSample,
    partition: &Partition,
    weights: &[f64],
    rng: &mut StdRng,
) -> Result<usize, SamplingError> {
    let mut kept = 0;
    for i in 0..partition.num_rows() {
        let dims: Vec<i64> = partition.dims().iter().map(|c| c.get_i64(i)).collect();
        let measures: Vec<f64> = partition.measures().iter().map(|m| m[i]).collect();
        if sample.insert(dims, measures, weights[i], rng)? {
            kept += 1;
        }
    }
    Ok(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, Schema};
    use rand::SeedableRng;

    fn schema() -> SchemaRef {
        Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared()
    }

    #[test]
    fn membership_matches_direct_rule() {
        // Row kept iff p ≤ w/(Δ+w) ⇔ key ≥ Δ — check both directions with
        // explicit p draws.
        let mut s = IncrementalGswSample::new(schema(), 10.0).unwrap();
        // w = 10, Δ = 10 → π = 0.5. p = 0.4 keeps; p = 0.6 drops.
        assert!(s.insert_with_p(vec![0], vec![1.0], 10.0, 0.4).unwrap());
        assert!(!s.insert_with_p(vec![1], vec![1.0], 10.0, 0.6).unwrap());
        assert_eq!(s.len(), 1);
        assert_eq!(s.population_rows(), 2);
    }

    #[test]
    fn raising_delta_equals_resampling() {
        // With the same p draws, the incremental sample raised Δ→Δ′ must
        // contain exactly the rows a direct GSW draw at Δ′ would keep.
        let schema = schema();
        let n = 2000;
        let mut rng = StdRng::seed_from_u64(9);
        let ps: Vec<f64> = (0..n).map(|_| rng.gen::<f64>().max(1e-12)).collect();
        let ws: Vec<f64> = (0..n).map(|i| 1.0 + (i % 50) as f64).collect();

        let mut inc = IncrementalGswSample::new(schema.clone(), 5.0).unwrap();
        for i in 0..n {
            inc.insert_with_p(vec![i as i64], vec![ws[i]], ws[i], ps[i]).unwrap();
        }
        let before = inc.len();
        inc.raise_delta(40.0).unwrap();
        assert!(inc.len() < before);

        // Direct membership at Δ′ = 40.
        let direct: Vec<bool> = (0..n).map(|i| ps[i] <= ws[i] / (40.0 + ws[i])).collect();
        let direct_count = direct.iter().filter(|b| **b).count();
        assert_eq!(inc.len(), direct_count);
        let s = inc.to_sample().unwrap();
        for r in 0..s.num_rows() {
            let row_id = s.rows().dim(0).get_i64(r) as usize;
            assert!(direct[row_id], "row {row_id} kept incrementally but not directly");
        }
    }

    #[test]
    fn lowering_delta_rejected() {
        let mut s = IncrementalGswSample::new(schema(), 5.0).unwrap();
        assert!(s.raise_delta(4.0).is_err());
        assert!(s.raise_delta(5.0).is_ok());
    }

    #[test]
    fn shrink_to_bounds_size() {
        let mut s = IncrementalGswSample::new(schema(), 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        for i in 0..5000i64 {
            s.insert(vec![i], vec![1.0], 1.0, &mut rng).unwrap();
        }
        let before_delta = s.delta();
        s.shrink_to(100);
        assert!(s.len() <= 100);
        assert!(s.delta() >= before_delta);
        // Invariant: every retained key ≥ Δ.
        let sample = s.to_sample().unwrap();
        assert_eq!(sample.num_rows(), s.len());
    }

    #[test]
    fn materialized_sample_estimates_unbiasedly() {
        let schema = schema();
        let n = 3000usize;
        let truth: f64 = (0..n).map(|i| 1.0 + (i % 10) as f64).sum();
        let mut total = 0.0;
        let reps = 200;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = IncrementalGswSample::new(schema.clone(), 50.0).unwrap();
            for i in 0..n {
                let m = 1.0 + (i % 10) as f64;
                s.insert(vec![i as i64], vec![m], m, &mut rng).unwrap();
            }
            let sample = s.to_sample().unwrap();
            let est: f64 = (0..sample.num_rows()).map(|r| sample.calibrated(0, r)).sum();
            total += est;
        }
        let mean = total / reps as f64;
        assert!((mean - truth).abs() / truth < 0.03, "mean {mean} vs {truth}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut s = IncrementalGswSample::new(schema(), 1.0).unwrap();
        assert!(s.insert_with_p(vec![0], vec![1.0], 0.0, 0.5).is_err());
        assert!(s.insert_with_p(vec![0], vec![1.0], 1.0, 0.0).is_err());
        assert!(s.insert_with_p(vec![0], vec![1.0], 1.0, 1.1).is_err());
        assert!(IncrementalGswSample::new(schema(), -1.0).is_err());
        assert!(IncrementalGswSample::new(schema(), f64::NAN).is_err());
    }
}
