//! Threshold sampling (Duffield–Lund–Thorup \[20\]): Poisson sampling with
//! `π_i = min(1, m_i/τ)` and HT estimator `m̂_i = max(m_i, τ)`. It is the
//! Poisson (independent-inclusion) analogue of priority sampling and the
//! direct ancestor of GSW's "smoothed" inclusion probabilities.

use crate::error::SamplingError;
use crate::gsw::gather_rows;
use crate::sample::{MeasureScope, Sample};
use crate::sampler::{SampleSize, Sampler};
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;

/// Threshold sampler for one measure.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdSampler {
    measure: usize,
    size: SampleSize,
}

impl ThresholdSampler {
    /// Threshold sampler on `measure`, with τ calibrated per partition so
    /// the expected size matches `size`.
    pub fn new(measure: usize, size: SampleSize) -> Self {
        ThresholdSampler { measure, size }
    }
}

/// Solve `Σ min(1, m_i/τ) = target` for τ (strictly decreasing in τ).
pub fn tau_for_expected_size(measures: &[f64], target: f64) -> Result<f64, SamplingError> {
    let n = measures.len() as f64;
    if target <= 0.0 {
        return Err(SamplingError::InvalidParam(format!(
            "target expected size must be positive, got {target}"
        )));
    }
    if target >= n {
        return Ok(0.0); // τ = 0 keeps everything (π = 1)
    }
    let expected = |tau: f64| -> f64 { measures.iter().map(|m| (m / tau).min(1.0)).sum() };
    let mut lo = 0.0f64;
    let mut hi = measures.iter().copied().fold(1.0, f64::max).max(1e-12);
    while expected(hi) > target {
        hi *= 2.0;
        if !hi.is_finite() {
            return Err(SamplingError::InvalidParam("cannot bracket tau".to_string()));
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

impl Sampler for ThresholdSampler {
    fn name(&self) -> String {
        match self.size {
            SampleSize::Rate(r) => format!("threshold[m{}]@{r}", self.measure),
            SampleSize::Expected(k) => format!("threshold[m{}]#{k}", self.measure),
        }
    }

    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<Sample, SamplingError> {
        let n = partition.num_rows();
        if self.measure >= partition.measures().len() {
            return Err(SamplingError::BadMeasure {
                index: self.measure,
                num_measures: partition.measures().len(),
            });
        }
        let target = self.size.resolve(n)?;
        let m = partition.measure(self.measure);
        let tau = tau_for_expected_size(m, target)?;
        let mut indices = Vec::new();
        let mut pi = Vec::new();
        for (i, &v) in m.iter().enumerate() {
            let p = if tau == 0.0 { 1.0 } else { (v / tau).min(1.0) };
            if p >= 1.0 || (p > 0.0 && rng.gen::<f64>() < p) {
                indices.push(i);
                pi.push(p.clamp(f64::MIN_POSITIVE, 1.0));
            }
        }
        let rows = gather_rows(partition, &indices);
        Sample::new(schema.clone(), rows, pi, n, self.name(), MeasureScope::Single(self.measure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, DimensionColumn, Schema};
    use rand::SeedableRng;

    fn setup(values: Vec<f64>) -> (SchemaRef, Partition) {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let n = values.len();
        let p = Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![values],
        )
        .unwrap();
        (schema, p)
    }

    #[test]
    fn tau_calibration() {
        let m: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let tau = tau_for_expected_size(&m, 10.0).unwrap();
        let e: f64 = m.iter().map(|v| (v / tau).min(1.0)).sum();
        assert!((e - 10.0).abs() < 0.01, "E = {e}");
        assert_eq!(tau_for_expected_size(&m, 200.0).unwrap(), 0.0);
    }

    #[test]
    fn rows_above_tau_always_included() {
        let values: Vec<f64> = (0..500).map(|i| if i < 5 { 1e6 } else { 1.0 }).collect();
        let (schema, p) = setup(values);
        let sampler = ThresholdSampler::new(0, SampleSize::Expected(20));
        let mut rng = StdRng::seed_from_u64(0);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        let big = (0..s.num_rows()).filter(|&r| s.rows().measure(0)[r] == 1e6).count();
        assert_eq!(big, 5, "all five heavy rows must be present");
    }

    #[test]
    fn unbiased_over_replications() {
        let values: Vec<f64> = (0..1000).map(|i| if i % 100 == 0 { 400.0 } else { 2.0 }).collect();
        let truth: f64 = values.iter().sum();
        let (schema, p) = setup(values);
        let sampler = ThresholdSampler::new(0, SampleSize::Expected(80));
        let mut total = 0.0;
        let reps = 300;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            total += (0..s.num_rows()).map(|r| s.calibrated(0, r)).sum::<f64>();
        }
        let mean = total / reps as f64;
        assert!((mean - truth).abs() / truth < 0.02, "mean {mean} vs {truth}");
    }

    #[test]
    fn calibrated_is_max_m_tau() {
        // For included rows with m < τ, m̂ = m/π = τ.
        let values: Vec<f64> = (0..200).map(|i| (i + 1) as f64).collect();
        let (schema, p) = setup(values);
        let sampler = ThresholdSampler::new(0, SampleSize::Expected(50));
        let mut rng = StdRng::seed_from_u64(3);
        let s = sampler.sample(&schema, &p, &mut rng).unwrap();
        let mut small_calibrated: Vec<f64> = (0..s.num_rows())
            .filter(|&r| s.inclusion_probabilities()[r] < 1.0)
            .map(|r| s.calibrated(0, r))
            .collect();
        small_calibrated.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert!(
            small_calibrated.len() <= 1,
            "all below-threshold rows share m̂ = τ, got {small_calibrated:?}"
        );
    }
}
