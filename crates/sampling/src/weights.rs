//! Sampling-weight strategies for GSW (§4.1–§4.2).
//!
//! GSW accepts *arbitrary positive* weights; the choice decides accuracy:
//!
//! * [`WeightStrategy::SingleMeasure`] — `w = m`, the optimal GSW sampler
//!   of Corollary 4;
//! * [`WeightStrategy::ArithmeticMean`] — `w⁺_i = (1/k) Σ_j m_i^{(j)}`
//!   (Eq. 9), error bound √(δ²/E|S|) via the range deviation δ;
//! * [`WeightStrategy::GeometricMean`] — `w×_i = (Π_j m_i^{(j)})^{1/k}`
//!   (Eq. 7), error bound via the trend deviation ρ;
//! * [`WeightStrategy::Constant`] — degenerate case: equal weights make
//!   GSW a uniform Bernoulli sampler (useful as an ablation).
//!
//! Zero measures would give zero weight, i.e. zero inclusion probability —
//! biased if the row's measure of interest is non-zero. The paper
//! implicitly assumes positive measures; we clamp weights to a small
//! positive floor and document the deviation (DESIGN.md §5).

use crate::error::SamplingError;
use flashp_storage::Partition;

/// Lower bound applied to all computed weights; keeps inclusion
/// probabilities positive for rows whose weight source is zero.
pub const WEIGHT_FLOOR: f64 = 1e-9;

/// How GSW sampling weights are derived from a partition's measures.
#[derive(Debug, Clone, PartialEq)]
pub enum WeightStrategy {
    /// `w_i = m_i^{(j)}` — optimal for measure `j` (Corollary 4).
    SingleMeasure(usize),
    /// Arithmetic mean of the listed measures (compressed GSW, Eq. 9).
    ArithmeticMean(Vec<usize>),
    /// Geometric mean of the listed measures (compressed GSW, Eq. 7).
    GeometricMean(Vec<usize>),
    /// Equal weight for every row (Bernoulli/uniform as a GSW special
    /// case).
    Constant,
}

impl WeightStrategy {
    /// Short label used in sampler names.
    pub fn label(&self) -> String {
        match self {
            WeightStrategy::SingleMeasure(j) => format!("opt[m{j}]"),
            WeightStrategy::ArithmeticMean(g) => format!("arith{g:?}"),
            WeightStrategy::GeometricMean(g) => format!("geo{g:?}"),
            WeightStrategy::Constant => "const".to_string(),
        }
    }

    /// The measure indices this strategy reads.
    pub fn measures(&self) -> Vec<usize> {
        match self {
            WeightStrategy::SingleMeasure(j) => vec![*j],
            WeightStrategy::ArithmeticMean(g) | WeightStrategy::GeometricMean(g) => g.clone(),
            WeightStrategy::Constant => Vec::new(),
        }
    }

    /// Compute per-row weights for `partition`, validating measure indices
    /// and clamping to [`WEIGHT_FLOOR`].
    pub fn compute(&self, partition: &Partition) -> Result<Vec<f64>, SamplingError> {
        let n = partition.num_rows();
        let num_measures = partition.measures().len();
        for &j in &self.measures() {
            if j >= num_measures {
                return Err(SamplingError::BadMeasure { index: j, num_measures });
            }
        }
        let mut w = vec![0.0; n];
        match self {
            WeightStrategy::Constant => {
                w.iter_mut().for_each(|v| *v = 1.0);
            }
            WeightStrategy::SingleMeasure(j) => {
                w.copy_from_slice(partition.measure(*j));
            }
            WeightStrategy::ArithmeticMean(group) => {
                if group.is_empty() {
                    return Err(SamplingError::InvalidParam(
                        "arithmetic-mean weights need at least one measure".to_string(),
                    ));
                }
                for &j in group {
                    let col = partition.measure(j);
                    for (acc, v) in w.iter_mut().zip(col) {
                        *acc += v;
                    }
                }
                let k = group.len() as f64;
                w.iter_mut().for_each(|v| *v /= k);
            }
            WeightStrategy::GeometricMean(group) => {
                if group.is_empty() {
                    return Err(SamplingError::InvalidParam(
                        "geometric-mean weights need at least one measure".to_string(),
                    ));
                }
                // Work in log space: w_i = exp(mean_j ln m_i^{(j)}), with
                // zero measures clamped to the floor first.
                let mut log_sum = vec![0.0; n];
                for &j in group {
                    let col = partition.measure(j);
                    for (acc, v) in log_sum.iter_mut().zip(col) {
                        *acc += v.max(WEIGHT_FLOOR).ln();
                    }
                }
                let k = group.len() as f64;
                for (out, ls) in w.iter_mut().zip(&log_sum) {
                    *out = (ls / k).exp();
                }
            }
        }
        for v in w.iter_mut() {
            if !v.is_finite() || *v < WEIGHT_FLOOR {
                *v = WEIGHT_FLOOR;
            }
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DimensionColumn, Partition};

    fn partition(m1: Vec<f64>, m2: Vec<f64>) -> Partition {
        let n = m1.len();
        Partition::from_columns(vec![DimensionColumn::Int64((0..n as i64).collect())], vec![m1, m2])
            .unwrap()
    }

    #[test]
    fn paper_example_means() {
        // §4.2: m(1) = [100,100,200,400], m(2) = [1,1,2,1].
        let p = partition(vec![100.0, 100.0, 200.0, 400.0], vec![1.0, 1.0, 2.0, 1.0]);
        let geo = WeightStrategy::GeometricMean(vec![0, 1]).compute(&p).unwrap();
        let expect_geo = [10.0, 10.0, 20.0, 20.0];
        for (a, b) in geo.iter().zip(expect_geo) {
            assert!((a - b).abs() < 1e-6, "geo {a} vs {b}");
        }
        let arith = WeightStrategy::ArithmeticMean(vec![0, 1]).compute(&p).unwrap();
        let expect_arith = [50.5, 50.5, 101.0, 200.5];
        for (a, b) in arith.iter().zip(expect_arith) {
            assert!((a - b).abs() < 1e-9, "arith {a} vs {b}");
        }
    }

    #[test]
    fn single_measure_copies() {
        let p = partition(vec![5.0, 7.0], vec![1.0, 1.0]);
        let w = WeightStrategy::SingleMeasure(0).compute(&p).unwrap();
        assert_eq!(w, vec![5.0, 7.0]);
    }

    #[test]
    fn constant_is_uniform() {
        let p = partition(vec![5.0, 7.0], vec![1.0, 1.0]);
        let w = WeightStrategy::Constant.compute(&p).unwrap();
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn zero_measures_get_floor() {
        let p = partition(vec![0.0, 10.0], vec![0.0, 0.0]);
        let w = WeightStrategy::SingleMeasure(0).compute(&p).unwrap();
        assert_eq!(w[0], WEIGHT_FLOOR);
        assert_eq!(w[1], 10.0);
        let w = WeightStrategy::GeometricMean(vec![0, 1]).compute(&p).unwrap();
        assert!(w.iter().all(|v| *v >= WEIGHT_FLOOR));
    }

    #[test]
    fn bad_measure_index_rejected() {
        let p = partition(vec![1.0], vec![1.0]);
        assert!(WeightStrategy::SingleMeasure(5).compute(&p).is_err());
        assert!(WeightStrategy::ArithmeticMean(vec![]).compute(&p).is_err());
        assert!(WeightStrategy::GeometricMean(vec![9]).compute(&p).is_err());
    }

    #[test]
    fn labels_are_distinct() {
        let labels: Vec<String> = [
            WeightStrategy::SingleMeasure(0),
            WeightStrategy::ArithmeticMean(vec![0, 1]),
            WeightStrategy::GeometricMean(vec![0, 1]),
            WeightStrategy::Constant,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }
}
