//! Multi-layer samples (§5): the offline preprocessor stores samples of
//! several sizes (increasing Δ ⇒ decreasing rate) per relation; the online
//! service picks a layer per query for the response-time / accuracy
//! tradeoff.

use crate::sample::Sample;
use flashp_storage::Timestamp;
use std::collections::BTreeMap;

/// One layer: all partitions sampled at a common nominal rate.
#[derive(Debug)]
pub struct Layer {
    /// Nominal sampling rate of the layer (e.g. 0.001 for "0.1 %").
    pub rate: f64,
    samples: BTreeMap<Timestamp, Sample>,
}

impl Layer {
    /// The sample for timestamp `t`, if present.
    pub fn sample_at(&self, t: Timestamp) -> Option<&Sample> {
        self.samples.get(&t)
    }

    /// Iterate `(t, sample)` in time order.
    pub fn samples(&self) -> impl Iterator<Item = (Timestamp, &Sample)> {
        self.samples.iter().map(|(t, s)| (*t, s))
    }

    /// Number of timestamps covered.
    pub fn num_partitions(&self) -> usize {
        self.samples.len()
    }

    /// Total bytes across all per-timestamp samples.
    pub fn byte_size(&self) -> usize {
        self.samples.values().map(Sample::byte_size).sum()
    }

    /// Total sampled rows across all timestamps.
    pub fn total_rows(&self) -> usize {
        self.samples.values().map(Sample::num_rows).sum()
    }
}

/// How to choose a layer for a requested rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerSelection {
    /// The cheapest (smallest-rate) layer whose rate is ≥ the request —
    /// accuracy at least as good as asked, minimal work.
    CheapestAdequate,
    /// The layer whose rate is closest to the request (log-scale).
    Closest,
}

/// A stack of sample layers for one relation.
#[derive(Debug, Default)]
pub struct MultiLayerSamples {
    /// Layers sorted by rate, descending (largest/most accurate first).
    layers: Vec<Layer>,
}

impl MultiLayerSamples {
    /// Create with the given nominal rates (deduplicated, sorted
    /// descending).
    pub fn new(rates: &[f64]) -> Self {
        let mut rates: Vec<f64> = rates.iter().copied().filter(|r| *r > 0.0 && *r <= 1.0).collect();
        rates.sort_by(|a, b| b.partial_cmp(a).expect("finite rates"));
        rates.dedup();
        MultiLayerSamples {
            layers: rates
                .into_iter()
                .map(|rate| Layer { rate, samples: BTreeMap::new() })
                .collect(),
        }
    }

    /// All layers, largest rate first.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Insert a sample for `(layer_rate, t)`; the layer must exist.
    pub fn insert(&mut self, layer_rate: f64, t: Timestamp, sample: Sample) -> bool {
        match self.layers.iter_mut().find(|l| l.rate == layer_rate) {
            Some(layer) => {
                layer.samples.insert(t, sample);
                true
            }
            None => false,
        }
    }

    /// Pick a layer for the requested rate.
    pub fn select(&self, requested_rate: f64, policy: LayerSelection) -> Option<&Layer> {
        if self.layers.is_empty() {
            return None;
        }
        match policy {
            // Layers are sorted descending, so the last adequate layer is
            // the smallest adequate one.
            LayerSelection::CheapestAdequate => {
                self.layers.iter().rfind(|l| l.rate >= requested_rate).or(self.layers.first())
            }
            LayerSelection::Closest => self.layers.iter().min_by(|a, b| {
                let da = (a.rate.ln() - requested_rate.ln()).abs();
                let db = (b.rate.ln() - requested_rate.ln()).abs();
                da.total_cmp(&db)
            }),
        }
    }

    /// Total bytes across all layers (Fig. 15's space cost).
    pub fn byte_size(&self) -> usize {
        self.layers.iter().map(Layer::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::MeasureScope;
    use flashp_storage::{DataType, DimensionColumn, Partition, Schema};

    fn dummy_sample(rows: usize) -> Sample {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let p = Partition::from_columns(
            vec![DimensionColumn::Int64((0..rows as i64).collect())],
            vec![vec![1.0; rows]],
        )
        .unwrap();
        Sample::new(schema, p, vec![0.5; rows], rows * 2, "dummy", MeasureScope::All).unwrap()
    }

    #[test]
    fn layers_sorted_descending_and_dedup() {
        let ml = MultiLayerSamples::new(&[0.001, 0.01, 0.001, 1.0, -0.5]);
        let rates: Vec<f64> = ml.layers().iter().map(|l| l.rate).collect();
        assert_eq!(rates, vec![1.0, 0.01, 0.001]);
    }

    #[test]
    fn cheapest_adequate_selection() {
        let ml = MultiLayerSamples::new(&[1.0, 0.01, 0.001, 0.0002]);
        assert_eq!(ml.select(0.001, LayerSelection::CheapestAdequate).unwrap().rate, 0.001);
        assert_eq!(ml.select(0.005, LayerSelection::CheapestAdequate).unwrap().rate, 0.01);
        assert_eq!(ml.select(0.5, LayerSelection::CheapestAdequate).unwrap().rate, 1.0);
        // Larger than every layer: fall back to the most accurate.
        assert_eq!(ml.select(2.0, LayerSelection::CheapestAdequate).unwrap().rate, 1.0);
    }

    #[test]
    fn closest_selection_log_scale() {
        let ml = MultiLayerSamples::new(&[0.01, 0.001]);
        assert_eq!(ml.select(0.002, LayerSelection::Closest).unwrap().rate, 0.001);
        assert_eq!(ml.select(0.006, LayerSelection::Closest).unwrap().rate, 0.01);
    }

    #[test]
    fn insert_and_lookup() {
        let mut ml = MultiLayerSamples::new(&[0.01]);
        let t = Timestamp(10);
        assert!(ml.insert(0.01, t, dummy_sample(5)));
        assert!(!ml.insert(0.5, t, dummy_sample(5)), "unknown layer rejected");
        let layer = ml.select(0.01, LayerSelection::CheapestAdequate).unwrap();
        assert_eq!(layer.sample_at(t).unwrap().num_rows(), 5);
        assert_eq!(layer.num_partitions(), 1);
        assert_eq!(layer.total_rows(), 5);
        assert!(ml.byte_size() > 0);
    }

    #[test]
    fn empty_stack_selects_none() {
        let ml = MultiLayerSamples::new(&[]);
        assert!(ml.select(0.01, LayerSelection::CheapestAdequate).is_none());
    }
}
