//! The common sampler interface: offline, per-partition, independent of
//! the online constraint `C` (the requirement stated at the top of §4).

use crate::error::SamplingError;
use crate::sample::Sample;
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;

/// How large a sample to draw. The paper parameterizes GSW by Δ and
/// reports sampling *rates*; both are supported, plus absolute sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleSize {
    /// Expected fraction of the partition's rows, in (0, 1].
    Rate(f64),
    /// Expected number of rows.
    Expected(usize),
}

impl SampleSize {
    /// Resolve to an expected number of rows for a partition of `n` rows.
    pub fn resolve(self, n: usize) -> Result<f64, SamplingError> {
        match self {
            SampleSize::Rate(r) => {
                if !(r > 0.0 && r <= 1.0) {
                    return Err(SamplingError::InvalidParam(format!(
                        "sampling rate must be in (0,1], got {r}"
                    )));
                }
                Ok(r * n as f64)
            }
            SampleSize::Expected(k) => {
                if k == 0 {
                    return Err(SamplingError::InvalidParam(
                        "expected sample size must be >= 1".to_string(),
                    ));
                }
                Ok((k as f64).min(n as f64))
            }
        }
    }
}

/// An offline sampler: draws a [`Sample`] from one time partition. Drawing
/// is independent across partitions — this is what gives the estimation
/// noise `ε_t` its independence across time stamps (§3's second required
/// property).
pub trait Sampler {
    /// Human-readable name (appears in experiment output).
    fn name(&self) -> String;

    /// Draw a sample from `partition` using the supplied RNG.
    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<Sample, SamplingError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_rate() {
        assert_eq!(SampleSize::Rate(0.1).resolve(1000).unwrap(), 100.0);
        assert!(SampleSize::Rate(0.0).resolve(10).is_err());
        assert!(SampleSize::Rate(1.5).resolve(10).is_err());
        assert_eq!(SampleSize::Rate(1.0).resolve(10).unwrap(), 10.0);
    }

    #[test]
    fn resolve_expected_caps_at_population() {
        assert_eq!(SampleSize::Expected(50).resolve(1000).unwrap(), 50.0);
        assert_eq!(SampleSize::Expected(5000).resolve(1000).unwrap(), 1000.0);
        assert!(SampleSize::Expected(0).resolve(10).is_err());
    }
}
