//! Uniform (Bernoulli) sampling with Horvitz–Thompson estimation — the
//! baseline of the paper's experiments (also used by the PIM paper \[7\]).
//! Its error bound is proportional to the *range* of the measure
//! (max − min) \[28\], which is why it loses badly on heavy-tailed measures.

use crate::error::SamplingError;
use crate::gsw::gather_rows;
use crate::sample::{MeasureScope, Sample};
use crate::sampler::{SampleSize, Sampler};
use flashp_storage::{Partition, SchemaRef};
use rand::rngs::StdRng;
use rand::Rng;

/// Uniform Bernoulli sampler: every row is kept independently with the
/// same probability.
#[derive(Debug, Clone, Copy)]
pub struct UniformSampler {
    size: SampleSize,
}

impl UniformSampler {
    /// Sampler keeping an expected `size` worth of rows.
    pub fn new(size: SampleSize) -> Self {
        UniformSampler { size }
    }

    /// Sampler with a fixed rate in (0, 1].
    pub fn with_rate(rate: f64) -> Self {
        UniformSampler { size: SampleSize::Rate(rate) }
    }
}

impl Sampler for UniformSampler {
    fn name(&self) -> String {
        match self.size {
            SampleSize::Rate(r) => format!("uniform@{r}"),
            SampleSize::Expected(k) => format!("uniform#{k}"),
        }
    }

    fn sample(
        &self,
        schema: &SchemaRef,
        partition: &Partition,
        rng: &mut StdRng,
    ) -> Result<Sample, SamplingError> {
        let n = partition.num_rows();
        let expected = self.size.resolve(n)?;
        let rate = if n == 0 { 1.0 } else { (expected / n as f64).min(1.0) };
        let mut indices = Vec::with_capacity(expected.ceil() as usize);
        if rate >= 1.0 {
            indices.extend(0..n);
        } else {
            for i in 0..n {
                if rng.gen::<f64>() < rate {
                    indices.push(i);
                }
            }
        }
        let pi = vec![rate.min(1.0); indices.len()];
        let rows = gather_rows(partition, &indices);
        Sample::new(schema.clone(), rows, pi, n, self.name(), MeasureScope::All)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, DimensionColumn, Schema};
    use rand::SeedableRng;

    fn setup(n: usize) -> (SchemaRef, Partition) {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let p = Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![(0..n).map(|i| (i + 1) as f64).collect()],
        )
        .unwrap();
        (schema, p)
    }

    #[test]
    fn rate_one_keeps_all() {
        let (schema, p) = setup(100);
        let mut rng = StdRng::seed_from_u64(0);
        let s = UniformSampler::with_rate(1.0).sample(&schema, &p, &mut rng).unwrap();
        assert_eq!(s.num_rows(), 100);
        assert!(s.inclusion_probabilities().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn unbiased_over_replications() {
        let (schema, p) = setup(5000);
        let truth: f64 = p.measure(0).iter().sum();
        let sampler = UniformSampler::with_rate(0.05);
        let mut total = 0.0;
        let reps = 300;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = sampler.sample(&schema, &p, &mut rng).unwrap();
            total += (0..s.num_rows()).map(|r| s.calibrated(0, r)).sum::<f64>();
        }
        let mean = total / reps as f64;
        assert!((mean - truth).abs() / truth < 0.02, "mean {mean} vs {truth}");
    }

    #[test]
    fn expected_size_resolves_to_rate() {
        let (schema, p) = setup(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let s =
            UniformSampler::new(SampleSize::Expected(100)).sample(&schema, &p, &mut rng).unwrap();
        assert!((s.num_rows() as f64 - 100.0).abs() < 60.0);
        assert!(s.inclusion_probabilities().iter().all(|&x| (x - 0.1).abs() < 1e-12));
    }

    #[test]
    fn invalid_rate_rejected() {
        let (schema, p) = setup(10);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(UniformSampler::with_rate(0.0).sample(&schema, &p, &mut rng).is_err());
        assert!(UniformSampler::with_rate(1.2).sample(&schema, &p, &mut rng).is_err());
    }
}
